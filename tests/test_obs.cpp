// Observability-plane tests (ARCHITECTURE.md, "Observability").
//
// Pins the TraceRecorder contract — ring wrap accounting, span-only
// sampling, (lane, round) context sequencing, deterministic absorption —
// the flight recorder (window extraction, incident caps, structured JSON),
// and the determinism headline: a fixed replay or fault run produces
// bit-identical trace records whatever the pool thread count, controller,
// fleet, and serving plane alike. The Chrome trace exporter is pinned
// byte-exactly against a hand-crafted golden fixture (synthetic records:
// real controller traces carry bit-cast FP payloads that legitimately
// drift across architectures) and structurally on real fleet traces.

#include "obs/obs.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/controller.h"
#include "core/guard.h"
#include "obs/export.h"
#include "scenario/faults.h"
#include "scenario/topologies.h"
#include "scenario/workbench.h"
#include "serve/plan_service.h"
#include "sweep/controller_fleet.h"
#include "util/json.h"
#include "util/rng.h"

namespace meshopt {
namespace {

// ---------------------------------------------------------------- recorder

TEST(TraceRecorder, RingWrapsAndCountsDrops) {
  ObsConfig cfg;
  cfg.ring_capacity = 8;
  TraceRecorder rec(cfg);
  for (std::uint64_t r = 0; r < 12; ++r) {
    rec.set_context(0, r);
    rec.emit(ObsStage::kCache, ObsKind::kEvent, ObsCode::kCacheHit, r);
  }
  EXPECT_EQ(rec.size(), 8u);
  EXPECT_EQ(rec.records_emitted(), 12u);
  EXPECT_EQ(rec.records_dropped(), 4u);
  // The oldest four rounds were overwritten; the survivors are 4..11.
  const std::vector<ObsRecord> recs = rec.canonical_records();
  ASSERT_EQ(recs.size(), 8u);
  EXPECT_EQ(recs.front().round, 4u);
  EXPECT_EQ(recs.back().round, 11u);
}

TEST(TraceRecorder, SamplingDropsSpansButKeepsEvents) {
  ObsConfig cfg;
  cfg.sample_every = 2;
  TraceRecorder rec(cfg);
  for (std::uint64_t r = 0; r < 4; ++r) {
    rec.set_context(0, r);
    rec.emit(ObsStage::kRound, ObsKind::kSpan, ObsCode::kNone);
    rec.emit(ObsStage::kHealth, ObsKind::kEvent, ObsCode::kRecovery);
  }
  std::size_t spans = 0, events = 0;
  for (const ObsRecord& r : rec.canonical_records()) {
    (r.kind == ObsKind::kSpan ? spans : events) += 1;
    if (r.kind == ObsKind::kSpan) EXPECT_EQ(r.round % 2, 0u);
  }
  EXPECT_EQ(spans, 2u);   // rounds 0 and 2 only
  EXPECT_EQ(events, 4u);  // events always recorded
}

TEST(TraceRecorder, SequenceResetsOnlyWhenContextChanges) {
  TraceRecorder rec;
  rec.set_context(0, 0);
  rec.emit(ObsStage::kCache, ObsKind::kEvent, ObsCode::kCacheHit);
  rec.emit(ObsStage::kCache, ObsKind::kEvent, ObsCode::kCacheHit);
  rec.set_context(0, 0);  // same pair: seq continues
  rec.emit(ObsStage::kCache, ObsKind::kEvent, ObsCode::kCacheHit);
  rec.set_context(0, 1);  // new round: seq restarts
  rec.emit(ObsStage::kCache, ObsKind::kEvent, ObsCode::kCacheHit);
  rec.set_context(1, 1);  // new lane: seq restarts
  rec.emit(ObsStage::kCache, ObsKind::kEvent, ObsCode::kCacheHit);
  const std::vector<ObsRecord> recs = rec.canonical_records();
  ASSERT_EQ(recs.size(), 5u);
  EXPECT_EQ(recs[0].seq, 0u);
  EXPECT_EQ(recs[1].seq, 1u);
  EXPECT_EQ(recs[2].seq, 2u);
  EXPECT_EQ(recs[3].seq, 0u);  // (0, 1)
  EXPECT_EQ(recs[4].seq, 0u);  // (1, 1)
}

TEST(TraceRecorder, DeterministicEqualIgnoresWallEnrichment) {
  ObsRecord x;
  x.round = 3;
  x.stage = ObsStage::kPlan;
  x.kind = ObsKind::kSpan;
  x.a = 42;
  ObsRecord y = x;
  y.wall_ns = 123456;
  y.wall_dur_ns = 789;
  EXPECT_TRUE(deterministic_equal(x, y));
  y.a = 43;
  EXPECT_FALSE(deterministic_equal(x, y));
}

TEST(TraceRecorder, ClearKeepsConfigAndContext) {
  TraceRecorder rec;
  rec.set_context(7, 9);
  rec.emit(ObsStage::kPlan, ObsKind::kSpan, ObsCode::kNone);
  rec.trigger_incident(ObsCode::kPlanReject, "x");
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.records_emitted(), 0u);
  EXPECT_TRUE(rec.incidents().empty());
  EXPECT_EQ(rec.lane(), 7u);
  EXPECT_EQ(rec.round(), 9u);
}

TEST(TraceRecorder, AbsorbMergesCountersAndClearsTheSource) {
  ObsConfig small;
  small.ring_capacity = 4;
  TraceRecorder local(small);
  local.set_context(5, 0);
  for (int i = 0; i < 5; ++i)
    local.emit(ObsStage::kCache, ObsKind::kEvent, ObsCode::kCacheMiss,
               static_cast<std::uint64_t>(i));
  ASSERT_EQ(local.records_emitted(), 5u);
  ASSERT_EQ(local.records_dropped(), 1u);

  TraceRecorder main;
  main.absorb(local);
  // Lifetime totals carry over: 5 emitted (not 4 re-counted), 1 dropped.
  EXPECT_EQ(main.size(), 4u);
  EXPECT_EQ(main.records_emitted(), 5u);
  EXPECT_EQ(main.records_dropped(), 1u);
  // The source is cleared but keeps its config and ambient context.
  EXPECT_EQ(local.size(), 0u);
  EXPECT_EQ(local.records_emitted(), 0u);
  EXPECT_EQ(local.lane(), 5u);
}

TEST(TraceRecorder, AbsorbOrderBreaksCanonicalTies) {
  // Two producers reusing the same (lane, round, seq): the canonical sort
  // is stable, so absorption order decides — which is why orchestrators
  // must absorb in deterministic (job-index / batch) order.
  auto make = [](std::uint64_t payload) {
    TraceRecorder r;
    r.set_context(0, 0);
    r.emit(ObsStage::kSegment, ObsKind::kSpan, ObsCode::kNone, payload);
    return r;
  };
  TraceRecorder ab, ba;
  {
    TraceRecorder a = make(1), b = make(2);
    ab.absorb(a);
    ab.absorb(b);
  }
  {
    TraceRecorder a = make(1), b = make(2);
    ba.absorb(b);
    ba.absorb(a);
  }
  EXPECT_EQ(ab.canonical_records().front().a, 1u);
  EXPECT_EQ(ba.canonical_records().front().a, 2u);
}

// ---------------------------------------------------------- flight recorder

TEST(FlightRecorder, WindowCoversTheLastNRounds) {
  ObsConfig cfg;
  cfg.flight_window = 3;
  TraceRecorder rec(cfg);
  for (std::uint64_t r = 0; r < 10; ++r) {
    rec.set_context(0, r);
    rec.emit(ObsStage::kCache, ObsKind::kEvent, ObsCode::kCacheHit, r);
  }
  rec.trigger_incident(ObsCode::kPlanReject, "guardrail said no");
  ASSERT_EQ(rec.incidents().size(), 1u);
  const IncidentReport& inc = rec.incidents()[0];
  EXPECT_EQ(inc.code, ObsCode::kPlanReject);
  EXPECT_EQ(inc.round, 9u);
  EXPECT_EQ(inc.detail, "guardrail said no");
  // Rounds 7..9: three cache events plus the trigger's own health event.
  ASSERT_EQ(inc.window.size(), 4u);
  EXPECT_EQ(inc.window.front().round, 7u);
  EXPECT_EQ(inc.window.back().stage, ObsStage::kHealth);
  EXPECT_EQ(inc.window.back().code, ObsCode::kPlanReject);

  // The structured report parses and mirrors the window.
  const JsonValue doc = JsonValue::parse(inc.to_json());
  EXPECT_EQ(doc.at("schema").as_string(), "meshopt-incident-v1");
  EXPECT_EQ(doc.at("code").as_string(), "plan_reject");
  EXPECT_EQ(doc.at("round").as_int(), 9);
  EXPECT_EQ(doc.at("records").items().size(), inc.window.size());
  EXPECT_TRUE(doc.at("health").items().empty());  // no transition records
  EXPECT_EQ(doc.at("stages").items().size(), 2u);  // cache + health
}

TEST(FlightRecorder, ReportsBeyondTheCapAreCountedNotStored) {
  ObsConfig cfg;
  cfg.max_incidents = 1;
  TraceRecorder rec(cfg);
  for (int i = 0; i < 3; ++i) rec.trigger_incident(ObsCode::kCellError);
  EXPECT_EQ(rec.incidents().size(), 1u);
  EXPECT_EQ(rec.incidents_dropped(), 2u);
}

// ------------------------------------------- controller + flight recorder

ControllerConfig guard_test_config() {
  ControllerConfig cfg;
  cfg.probe_period_s = 0.25;
  cfg.probe_window = 40;
  cfg.optimizer.objective = Objective::kProportionalFair;
  return cfg;
}

/// Gateway-chain controller with the two standard flows, ready to sense
/// (mirrors tests/test_guard.cpp's rig).
struct GuardedRig {
  Workbench wb;
  MeshController ctl;

  explicit GuardedRig(std::uint64_t seed)
      : wb(seed), ctl(wb.net(), guard_test_config(), seed) {
    build_gateway_chain(wb);
    ManagedFlow far;
    far.flow_id = wb.net().open_flow(0, 2, Protocol::kUdp, 1470);
    far.path = {0, 1, 2};
    ctl.manage_flow(far);
    ManagedFlow near;
    near.flow_id = wb.net().open_flow(3, 2, Protocol::kUdp, 1470);
    near.path = {3, 2};
    ctl.manage_flow(near);
  }

  MeasurementSnapshot sense() {
    ctl.sense_window(wb);
    return ctl.snapshot();
  }
};

TEST(FlightRecorder, FiresOnFallbackEntryWithTheTransitionRound) {
  GuardedRig rig(53);
  rig.ctl.set_guard(GuardConfig{});
  TraceRecorder obs;
  rig.ctl.set_observer(&obs);
  const MeasurementSnapshot good = rig.sense();

  ASSERT_TRUE(rig.ctl.guarded_step(good).ok);        // trace round 0
  RoundResult round = rig.ctl.guarded_step(MeasurementSnapshot{});  // round 1
  ASSERT_EQ(round.health, HealthState::kFallback);

  ASSERT_EQ(obs.incidents().size(), 1u);
  const IncidentReport& inc = obs.incidents()[0];
  EXPECT_EQ(inc.code, ObsCode::kFallbackEntry);
  EXPECT_EQ(inc.lane, 0u);

  // The incident round is exactly the round of the HEALTHY->FALLBACK
  // transition event in the trace.
  const std::vector<ObsRecord> recs = obs.canonical_records(false);
  const ObsRecord* transition = nullptr;
  bool saw_reject = false;
  for (const ObsRecord& r : recs) {
    if (r.stage == ObsStage::kHealth && r.code == ObsCode::kHealthTransition &&
        r.b == static_cast<std::uint64_t>(HealthState::kFallback))
      transition = &r;
    saw_reject |= r.code == ObsCode::kSnapshotReject;
  }
  ASSERT_NE(transition, nullptr);
  EXPECT_TRUE(saw_reject);
  EXPECT_EQ(inc.round, transition->round);
  EXPECT_EQ(inc.round, 1u);

  // The structured report carries the trajectory into FALLBACK.
  const JsonValue doc = JsonValue::parse(inc.to_json());
  const std::vector<JsonValue>& health = doc.at("health").items();
  ASSERT_FALSE(health.empty());
  EXPECT_EQ(health.back().at("to").as_string(), "FALLBACK");

  // Backoff skip, then recovery — both land as always-on events.
  (void)rig.ctl.guarded_step(good);
  (void)rig.ctl.guarded_step(good);
  bool saw_backoff = false, saw_recovery = false;
  for (const ObsRecord& r : obs.canonical_records(false)) {
    saw_backoff |= r.code == ObsCode::kBackoffSkip;
    saw_recovery |= r.code == ObsCode::kRecovery;
  }
  EXPECT_TRUE(saw_backoff);
  EXPECT_TRUE(saw_recovery);
}

// ------------------------------------------------ chrome trace exporter

std::string obs_golden_path() {
  return std::string(MESHOPT_SOURCE_DIR) + "/tests/data/obs_trace_golden.json";
}

/// Hand-crafted records exercising every exporter surface: round/nested
/// spans, instant events, the component sub-lane, two lanes. Synthetic on
/// purpose — controller traces carry bit-cast FP payloads that drift
/// across architectures, and the golden is compared byte-exactly.
std::vector<ObsRecord> synthetic_records() {
  auto rec = [](std::uint64_t round, std::uint32_t lane, std::uint32_t seq,
                ObsStage stage, ObsKind kind, ObsCode code, std::uint64_t a,
                std::uint64_t b) {
    ObsRecord r;
    r.round = round;
    r.lane = lane;
    r.seq = seq;
    r.stage = stage;
    r.kind = kind;
    r.code = code;
    r.a = a;
    r.b = b;
    return r;
  };
  return {
      rec(0, 0, 0, ObsStage::kRound, ObsKind::kSpan, ObsCode::kNone, 0, 0),
      rec(0, 0, 1, ObsStage::kCache, ObsKind::kEvent, ObsCode::kCacheMiss,
          0x1234abcd, 0),
      rec(0, 0, 2, ObsStage::kPlan, ObsKind::kSpan, ObsCode::kNone, 2,
          0xdeadbeef),
      rec(1, 0, 0, ObsStage::kRound, ObsKind::kSpan, ObsCode::kNone, 0, 0),
      rec(1, 0, 1, ObsStage::kHealth, ObsKind::kEvent,
          ObsCode::kHealthTransition, 0, 2),
      rec(1, 0, 2, ObsStage::kHealth, ObsKind::kEvent, ObsCode::kFallbackEntry,
          0, 0),
      rec(0, 1, 0, ObsStage::kComponent, ObsKind::kSpan,
          ObsCode::kComponentSolve, 3, (5ull << 32) | 2),
      rec(0, 1, 1, ObsStage::kComponent, ObsKind::kEvent,
          ObsCode::kFallbackCross, 0, 0),
  };
}

/// Structural contract every exported trace must satisfy (the same checks
/// tools/check_trace_json.py runs in CI): parses, every event carries the
/// required keys, and ts is monotone within each (pid, tid) lane.
void validate_chrome_trace(const std::string& json, std::size_t min_events) {
  const JsonValue doc = JsonValue::parse(json);
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const std::vector<JsonValue>& events = doc.at("traceEvents").items();
  EXPECT_GE(events.size(), min_events);
  std::map<std::pair<int, int>, double> last_ts;
  std::size_t timed = 0;
  for (const JsonValue& ev : events) {
    const std::string& ph = ev.at("ph").as_string();
    ASSERT_TRUE(ph == "X" || ph == "i" || ph == "M") << ph;
    const int pid = ev.at("pid").as_int();
    const int tid = ev.at("tid").as_int();
    if (ph == "M") {
      EXPECT_NE(ev.at("args").find("name"), nullptr);
      continue;
    }
    ++timed;
    const double ts = ev.at("ts").as_number();
    if (ph == "X") EXPECT_GE(ev.at("dur").as_number(), 0.0);
    auto [it, fresh] = last_ts.try_emplace({pid, tid}, ts);
    if (!fresh) {
      EXPECT_LE(it->second, ts) << "lane (" << pid << ", " << tid << ")";
      it->second = ts;
    }
    EXPECT_NE(ev.at("args").find("round"), nullptr);
  }
  EXPECT_GE(timed, min_events > 0 ? 1u : 0u);
}

TEST(ChromeTrace, GoldenFixtureIsByteExact) {
  const std::string json = chrome_trace_json(synthetic_records());
  validate_chrome_trace(json, synthetic_records().size());

  if (std::getenv("MESHOPT_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(obs_golden_path());
    ASSERT_TRUE(out.is_open()) << obs_golden_path();
    out << json << "\n";
    GTEST_SKIP() << "regenerated " << obs_golden_path();
  }

  std::ifstream in(obs_golden_path());
  ASSERT_TRUE(in.is_open())
      << obs_golden_path()
      << " missing; regenerate with MESHOPT_REGEN_GOLDEN=1 ./test_obs";
  std::stringstream buf;
  buf << in.rdbuf();
  // The exporter output is deterministic down to the byte: synthetic
  // records use only integer payloads and synthesized timestamps.
  EXPECT_EQ(buf.str(), json + "\n");
}

// --------------------------------------------------- fleet trace identity

CityParams small_city() {
  CityParams p;
  p.clusters = 3;
  p.links_per_cluster = 5;
  p.bridge_links = 2;
  p.flows_per_cluster = 2;
  p.seed = 7;
  return p;
}

TEST(FleetTrace, ReplayTraceIsBitIdenticalAcrossThreadCounts) {
  const CityParams p = small_city();
  std::vector<MeasurementSnapshot> trace;
  for (int r = 0; r < 4; ++r) {
    MeasurementSnapshot snap = build_city_snapshot(p);
    for (SnapshotLink& l : snap.links)
      l.estimate.capacity_bps *= 1.0 + 0.005 * r;
    trace.push_back(std::move(snap));
  }
  ReplayCell cell;
  cell.flows = city_flows(p);
  cell.plan.optimizer.objective = Objective::kProportionalFair;
  cell.plan.tier = PlanTier::kFast;
  cell.interference = InterferenceModelKind::kLirTable;
  ReplayOptions opts;
  opts.decompose = true;
  opts.segment_rounds = 2;

  auto run = [&](int threads, TraceRecorder& obs) {
    ControllerFleet fleet(threads);
    fleet.set_observer(&obs);
    return fleet.replay({cell}, trace, opts);
  };
  TraceRecorder obs1, obs4;
  const auto r1 = run(1, obs1);
  const auto r4 = run(4, obs4);
  ASSERT_TRUE(r1[0].ok);
  EXPECT_EQ(r1[0].plans, r4[0].plans);

  const std::vector<ObsRecord> a = obs1.canonical_records(false);
  const std::vector<ObsRecord> b = obs4.canonical_records(false);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_TRUE(deterministic_equal(a[i], b[i])) << "record " << i;
  // The exported trace is therefore byte-identical too.
  const std::string json = chrome_trace_json(obs1);
  EXPECT_EQ(json, chrome_trace_json(obs4));
  validate_chrome_trace(json, a.size());

  // The trace shows the replay's structure: one segment span per pool job
  // and per-component solve spans from the decomposition tier.
  std::size_t segments = 0, comp_solves = 0;
  for (const ObsRecord& r : a) {
    segments += r.stage == ObsStage::kSegment && r.kind == ObsKind::kSpan;
    comp_solves += r.code == ObsCode::kComponentSolve;
  }
  EXPECT_EQ(segments, 2u);  // 4 rounds sharded into 2-round segments
  EXPECT_GT(comp_solves, 0u);
}

TEST(FleetTrace, LiveFaultRunTracesIncidentsDeterministically) {
  auto make_cells = [] {
    std::vector<FleetCell> cells(2);
    for (FleetCell& cell : cells) {
      cell.build_topology = [](Workbench& wb) { build_gateway_chain(wb); };
      cell.flows = {FleetFlow{{0, 1, 2}}, FleetFlow{{3, 2}}};
      cell.controller = guard_test_config();
      cell.controller.probe_window = 20;
      cell.rounds = 12;
      cell.faults = [](std::uint64_t seed) {
        return window_dropout_faults(12, 0.5, RngStream(seed, "drop"));
      };
    }
    cells[1].flows = {FleetFlow{{0}}};  // invalid: throws in cell setup
    return cells;
  };
  auto run = [&](int threads, TraceRecorder& obs) {
    ControllerFleet fleet(threads);
    fleet.set_observer(&obs);
    return fleet.run(make_cells(), 911);
  };
  TraceRecorder obs1, obs4;
  const auto r1 = run(1, obs1);
  const auto r4 = run(4, obs4);
  ASSERT_EQ(r1.size(), 2u);
  EXPECT_TRUE(r1[0].error.empty()) << r1[0].error;
  ASSERT_GT(r1[0].health.fallback_entries, 0u);
  EXPECT_FALSE(r1[1].error.empty());

  // The healthy cell's dropouts fire the flight recorder; the dead cell
  // lands as a kCellError incident carrying the exception text.
  std::size_t fallbacks = 0, cell_errors = 0;
  for (const IncidentReport& inc : obs1.incidents()) {
    if (inc.code == ObsCode::kFallbackEntry) {
      ++fallbacks;
      EXPECT_EQ(inc.lane, 0u);
    } else if (inc.code == ObsCode::kCellError) {
      ++cell_errors;
      EXPECT_EQ(inc.lane, 1u);
      EXPECT_EQ(inc.detail, r1[1].error);
    }
  }
  EXPECT_EQ(fallbacks, r1[0].health.fallback_entries);
  EXPECT_EQ(cell_errors, 1u);

  // Trace and incidents are bit-identical across thread counts.
  const std::vector<ObsRecord> a = obs1.canonical_records(false);
  const std::vector<ObsRecord> b = obs4.canonical_records(false);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_TRUE(deterministic_equal(a[i], b[i])) << "record " << i;
  ASSERT_EQ(obs1.incidents().size(), obs4.incidents().size());
  for (std::size_t i = 0; i < obs1.incidents().size(); ++i) {
    const IncidentReport& x = obs1.incidents()[i];
    const IncidentReport& y = obs4.incidents()[i];
    EXPECT_EQ(x.code, y.code);
    EXPECT_EQ(x.round, y.round);
    EXPECT_EQ(x.lane, y.lane);
    EXPECT_EQ(x.detail, y.detail);
    EXPECT_EQ(x.window.size(), y.window.size());
  }
}

// --------------------------------------------------- serve trace identity

MeasurementSnapshot chain_snapshot() {
  MeasurementSnapshot snap;
  const NodeId hops[][2] = {{0, 1}, {1, 2}, {3, 2}};
  for (const auto& h : hops) {
    SnapshotLink l;
    l.src = h[0];
    l.dst = h[1];
    l.rate = Rate::kR11Mbps;
    l.estimate.p_link = 0.02;
    l.estimate.capacity_bps = 4.2e6;
    snap.links.push_back(l);
  }
  snap.neighbors = {{0, 1}, {1, 2}, {1, 3}, {2, 3}};
  return snap;
}

TEST(ServeTrace, BitIdenticalAcrossPoolThreads) {
  std::vector<FlowSpec> flows(2);
  flows[0].flow_id = 0;
  flows[0].path = {0, 1, 2};
  flows[1].flow_id = 1;
  flows[1].path = {3, 2};
  const std::vector<MeasurementSnapshot> pool = {chain_snapshot()};
  const ServeScript script = staggered_replay_script(
      /*tenants=*/4, /*rounds_per_tenant=*/3, /*pool_rounds=*/1,
      /*ticks_per_round=*/2, /*seed=*/42);

  auto run = [&](int threads, TraceRecorder& obs) {
    ServeConfig cfg;
    cfg.threads = threads;
    PlanService svc(cfg);
    for (std::uint32_t t = 0; t < 4; ++t) {
      TenantConfig tc;
      tc.flows = flows;
      tc.plan.tier = t % 2 == 0 ? PlanTier::kExact : PlanTier::kFast;
      tc.guarded = t % 3 == 0;
      svc.add_tenant(std::move(tc));
    }
    svc.set_observer(&obs);
    return svc.run_script(script, pool);
  };
  TraceRecorder obs1, obs4;
  const ServeReport r1 = run(1, obs1);
  const ServeReport r4 = run(4, obs4);
  EXPECT_EQ(r1.served, r4.served);

  const std::vector<ObsRecord> a = obs1.canonical_records(false);
  const std::vector<ObsRecord> b = obs4.canonical_records(false);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_TRUE(deterministic_equal(a[i], b[i])) << "record " << i;

  // One serve span per served plan, stamped (tenant lane, round seq).
  std::size_t serve_spans = 0;
  for (const ObsRecord& r : a)
    serve_spans += r.stage == ObsStage::kServe && r.kind == ObsKind::kSpan;
  EXPECT_EQ(serve_spans, r1.served.size());
}

// ------------------------------------------------- prometheus stage text

TEST(PrometheusStageText, WellFormedAndCountsMatch) {
  TraceRecorder rec;
  rec.set_context(0, 0);
  // Explicit wall durations populate the stage histograms independently of
  // the wall_clock config knob (the fields are caller-supplied).
  rec.emit(ObsStage::kPlan, ObsKind::kSpan, ObsCode::kNone, 0, 0,
           /*wall_ns=*/100, /*wall_dur_ns=*/5000);
  rec.emit(ObsStage::kApply, ObsKind::kSpan, ObsCode::kNone, 0, 0,
           /*wall_ns=*/120, /*wall_dur_ns=*/2500);
  rec.emit(ObsStage::kHealth, ObsKind::kEvent, ObsCode::kRecovery);

  const std::string text = prometheus_stage_text(rec);
  EXPECT_NE(text.find("# TYPE meshopt_stage_wall_ns histogram"),
            std::string::npos);
  EXPECT_NE(text.find("meshopt_stage_wall_ns_count{stage=\"plan\"} 1"),
            std::string::npos);
  EXPECT_NE(
      text.find("meshopt_stage_wall_ns_bucket{stage=\"apply\",le=\"+Inf\"} 1"),
      std::string::npos);
  EXPECT_NE(text.find("meshopt_obs_records_emitted_total 3"),
            std::string::npos);
  EXPECT_NE(text.find("meshopt_obs_incidents_total 0"), std::string::npos);

  // Exposition-format shape: every non-comment line is "<name> <value>"
  // with a parseable value ("+Inf" only ever appears inside le labels).
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    ASSERT_GT(sp, 0u) << line;
    EXPECT_NO_THROW((void)std::stod(line.substr(sp + 1))) << line;
  }
}

}  // namespace
}  // namespace meshopt
