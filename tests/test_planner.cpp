// Planner / topology-keyed model cache tests: fingerprint stability across
// capacity-only changes (and sensitivity to any neighbor/LIR edit), cache
// hit/miss/eviction accounting, cached-vs-uncached model and plan
// bit-identity on the live and replay paths, trace-segment sharding
// bit-identity, and the two-stage build equivalence.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/controller.h"
#include "core/interference.h"
#include "core/planner.h"
#include "core/rate_plan.h"
#include "core/snapshot.h"
#include "model/feasibility.h"
#include "probe/live_source.h"
#include "scenario/topologies.h"
#include "scenario/workbench.h"
#include "sweep/controller_fleet.h"
#include "util/rng.h"

namespace meshopt {
namespace {

/// A small hand-built snapshot: 3 links of a chain plus a cross link.
MeasurementSnapshot chain_snapshot() {
  MeasurementSnapshot snap;
  const NodeId hops[][2] = {{0, 1}, {1, 2}, {3, 2}};
  for (const auto& h : hops) {
    SnapshotLink l;
    l.src = h[0];
    l.dst = h[1];
    l.rate = Rate::kR11Mbps;
    l.estimate.p_data = 0.05;
    l.estimate.p_ack = 0.01;
    l.estimate.p_link = 0.02;
    l.estimate.capacity_bps = 4.2e6;
    snap.links.push_back(l);
  }
  snap.neighbors = {{0, 1}, {1, 2}, {1, 3}, {2, 3}};
  return snap;
}

/// A larger randomized LIR snapshot (so the conflict graph is non-trivial).
MeasurementSnapshot lir_snapshot(int links, std::uint64_t seed) {
  MeasurementSnapshot snap;
  RngStream rng(seed, "planner-lir");
  for (int i = 0; i < links; ++i) {
    SnapshotLink l;
    l.src = i;
    l.dst = i + 1;
    l.rate = Rate::kR11Mbps;
    l.estimate.capacity_bps = rng.uniform(0.5e6, 5e6);
    l.estimate.p_link = rng.uniform(0.0, 0.2);
    snap.links.push_back(l);
  }
  snap.lir.resize(links, links, 1.0);
  for (int i = 0; i < links; ++i)
    for (int j = i + 1; j < links; ++j)
      if (rng.bernoulli(0.5)) snap.lir(i, j) = snap.lir(j, i) = 0.4;
  snap.lir_threshold = 0.95;
  return snap;
}

TEST(TopologyFingerprint, StableAcrossCapacityOnlyChanges) {
  MeasurementSnapshot snap = chain_snapshot();
  const std::uint64_t base = snap.topology_fingerprint();

  // Capacity/loss estimates and retry limits feed the capacity and plan
  // stages, not the conflict graph: the fingerprint must not move.
  snap.links[0].estimate.capacity_bps *= 0.5;
  snap.links[1].estimate.p_data = 0.9;
  snap.links[2].estimate.p_link = 0.7;
  snap.links[0].retry_limit = 3;
  EXPECT_EQ(snap.topology_fingerprint(), base);
}

TEST(TopologyFingerprint, ChangesOnAnyTopologyEdit) {
  const MeasurementSnapshot base = chain_snapshot();
  const std::uint64_t fp = base.topology_fingerprint();

  {  // neighbor edit
    MeasurementSnapshot s = base;
    s.neighbors.pop_back();
    EXPECT_NE(s.topology_fingerprint(), fp);
  }
  {  // link added
    MeasurementSnapshot s = base;
    SnapshotLink l = s.links.back();
    l.src = 2;
    l.dst = 1;
    s.links.push_back(l);
    EXPECT_NE(s.topology_fingerprint(), fp);
  }
  {  // link endpoint edit
    MeasurementSnapshot s = base;
    s.links[0].dst = 3;
    EXPECT_NE(s.topology_fingerprint(), fp);
  }
  {  // rate edit (part of the link identity)
    MeasurementSnapshot s = base;
    s.links[0].rate = Rate::kR1Mbps;
    EXPECT_NE(s.topology_fingerprint(), fp);
  }
  {  // LIR table appears
    MeasurementSnapshot s = base;
    s.lir.resize(3, 3, 1.0);
    EXPECT_NE(s.topology_fingerprint(), fp);
  }
  {  // LIR threshold moves (even by one ulp-scale nudge)
    MeasurementSnapshot s = base;
    s.lir_threshold = 0.95 + 1e-12;
    EXPECT_NE(s.topology_fingerprint(), fp);
  }
  {  // a single LIR cell edit
    MeasurementSnapshot a = lir_snapshot(12, 7);
    MeasurementSnapshot b = a;
    b.lir(2, 5) = b.lir(2, 5) * 0.5;
    EXPECT_NE(a.topology_fingerprint(), b.topology_fingerprint());
  }
}

TEST(Planner, TwoStageBuildMatchesOneShot) {
  for (const MeasurementSnapshot& snap :
       {chain_snapshot(), lir_snapshot(20, 11)}) {
    for (const InterferenceModelKind kind :
         {InterferenceModelKind::kTwoHop, InterferenceModelKind::kLirTable}) {
      const InterferenceModel one_shot = InterferenceModel::build(snap, kind);
      const InterferenceTopology topo =
          InterferenceModel::build_topology(snap, kind);
      const InterferenceModel staged =
          InterferenceModel::from_topology(topo, snap.capacities());
      EXPECT_EQ(staged.kind(), one_shot.kind());
      EXPECT_EQ(staged.extreme_points(), one_shot.extreme_points());
      // And the rows really carry the enumeration: refilling with fresh
      // capacities matches a fresh one-shot build over those capacities.
      MeasurementSnapshot drifted = snap;
      for (SnapshotLink& l : drifted.links) l.estimate.capacity_bps *= 0.75;
      const InterferenceModel refreshed =
          InterferenceModel::from_topology(topo, drifted.capacities());
      EXPECT_EQ(refreshed.extreme_points(),
                InterferenceModel::build(drifted, kind).extreme_points());
    }
  }
}

TEST(Planner, CacheAccountingHitsMissesEvictions) {
  Planner planner(2);
  MeasurementSnapshot snap = lir_snapshot(10, 3);

  (void)planner.model(snap, InterferenceModelKind::kLirTable);
  EXPECT_EQ(planner.stats().misses, 1u);
  EXPECT_EQ(planner.stats().hits, 0u);

  // Capacity-only drift: same fingerprint, cache hit.
  snap.links[0].estimate.capacity_bps *= 2.0;
  (void)planner.model(snap, InterferenceModelKind::kLirTable);
  EXPECT_EQ(planner.stats().hits, 1u);
  EXPECT_EQ(planner.stats().misses, 1u);

  // A different requested kind is a different cache key.
  (void)planner.model(snap, InterferenceModelKind::kTwoHop);
  EXPECT_EQ(planner.stats().misses, 2u);
  EXPECT_EQ(planner.cached_topologies(), 2u);

  // Topology edit: miss, and with capacity 2 the LRU victim (the stale
  // LIR entry, least recently used) is evicted.
  MeasurementSnapshot edited = snap;
  edited.lir(0, 5) = 0.1;
  (void)planner.model(edited, InterferenceModelKind::kLirTable);
  EXPECT_EQ(planner.stats().misses, 3u);
  EXPECT_EQ(planner.stats().evictions, 1u);
  EXPECT_EQ(planner.cached_topologies(), 2u);

  // The evicted topology re-misses; the surviving one still hits.
  (void)planner.model(edited, InterferenceModelKind::kLirTable);
  EXPECT_EQ(planner.stats().hits, 2u);

  planner.clear();
  EXPECT_EQ(planner.stats().hits, 0u);
  EXPECT_EQ(planner.cached_topologies(), 0u);

  // Capacity 0 disables storage entirely: every call is a miss.
  Planner uncached(0);
  (void)uncached.model(snap, InterferenceModelKind::kLirTable);
  (void)uncached.model(snap, InterferenceModelKind::kLirTable);
  EXPECT_EQ(uncached.stats().misses, 2u);
  EXPECT_EQ(uncached.stats().hits, 0u);
  EXPECT_EQ(uncached.cached_topologies(), 0u);
}

TEST(Planner, UncacheableBuildsAreNotCacheMisses) {
  // Regression: model(cacheable=false) — the repaired-snapshot path —
  // used to charge a cache miss even though the cache was barred from
  // storing the entry. Uncacheable builds get their own counter; a miss
  // means the cache could actually have held the model.
  Planner planner(4);
  const MeasurementSnapshot snap = lir_snapshot(10, 3);

  (void)planner.model(snap, InterferenceModelKind::kLirTable, 200000,
                      /*cacheable=*/false);
  EXPECT_EQ(planner.stats().uncacheable_plans, 1u);
  EXPECT_EQ(planner.stats().misses, 0u);
  EXPECT_EQ(planner.stats().hits, 0u);
  EXPECT_EQ(planner.cached_topologies(), 0u);  // nothing was stored

  // The first cacheable call is a genuine miss (and stores the entry).
  (void)planner.model(snap, InterferenceModelKind::kLirTable);
  EXPECT_EQ(planner.stats().misses, 1u);
  EXPECT_EQ(planner.cached_topologies(), 1u);

  // With the entry resident, an uncacheable call may still read it: a
  // hit, and the uncacheable counter does not move.
  (void)planner.model(snap, InterferenceModelKind::kLirTable, 200000,
                      /*cacheable=*/false);
  EXPECT_EQ(planner.stats().hits, 1u);
  EXPECT_EQ(planner.stats().uncacheable_plans, 1u);
  EXPECT_EQ(planner.stats().misses, 1u);

  // A cache with zero capacity asked for a cacheable build still charges
  // a miss — the caller allowed caching, the capacity said no.
  Planner uncached(0);
  (void)uncached.model(snap, InterferenceModelKind::kLirTable);
  EXPECT_EQ(uncached.stats().misses, 1u);
  EXPECT_EQ(uncached.stats().uncacheable_plans, 0u);
}

TEST(Planner, CachedModelAndPlanBitIdenticalToUncached) {
  // 12 rounds over two alternating topologies with per-round capacity
  // drift: the cached path must produce bit-identical models and plans to
  // fresh uncached builds, across hits, misses, and re-hits.
  const MeasurementSnapshot topo_a = lir_snapshot(16, 21);
  MeasurementSnapshot topo_b = topo_a;
  topo_b.lir(3, 9) = topo_b.lir(9, 3) = 0.2;

  std::vector<FlowSpec> flows(2);
  flows[0].flow_id = 0;
  flows[0].path = {0, 1, 2, 3};
  flows[1].flow_id = 1;
  flows[1].path = {8, 9, 10};
  PlanConfig cfg;
  cfg.optimizer.objective = Objective::kProportionalFair;

  Planner planner(4);
  RngStream rng(5, "drift");
  for (int r = 0; r < 12; ++r) {
    MeasurementSnapshot snap = (r / 3) % 2 == 0 ? topo_a : topo_b;
    for (SnapshotLink& l : snap.links)
      l.estimate.capacity_bps *= rng.uniform(0.8, 1.2);

    const InterferenceModel& cached =
        planner.model(snap, InterferenceModelKind::kLirTable);
    const InterferenceModel uncached =
        InterferenceModel::build(snap, InterferenceModelKind::kLirTable);
    ASSERT_EQ(cached.extreme_points(), uncached.extreme_points())
        << "round " << r;
    EXPECT_EQ(plan_rates(snap, cached, flows, cfg),
              plan_rates(snap, uncached, flows, cfg))
        << "round " << r;
    EXPECT_EQ(planner.plan(snap, InterferenceModelKind::kLirTable, flows, cfg),
              plan_rates(snap, uncached, flows, cfg))
        << "round " << r;
  }
  // Both topologies stayed resident: only the very first model() call of
  // each missed (the planner.plan call doubles the model() count per
  // round; all the extra calls hit).
  EXPECT_EQ(planner.stats().misses, 2u);
  EXPECT_EQ(planner.stats().hits, 12u * 2u - 2u);
}

ControllerConfig live_config() {
  ControllerConfig cfg;
  cfg.probe_period_s = 0.25;
  cfg.probe_window = 40;
  cfg.optimizer.objective = Objective::kProportionalFair;
  return cfg;
}

void add_gateway_flows(Workbench& wb, MeshController& ctl) {
  ManagedFlow far;
  far.flow_id = wb.net().open_flow(0, 2, Protocol::kUdp, 1470);
  far.path = {0, 1, 2};
  ctl.manage_flow(far);
  ManagedFlow near;
  near.flow_id = wb.net().open_flow(3, 2, Protocol::kUdp, 1470);
  near.path = {3, 2};
  ctl.manage_flow(near);
}

TEST(Planner, LivePathCachedEqualsUncachedController) {
  // Two identical live controllers, one with the planner cache disabled:
  // every round's plan must be bit-identical, and the cached side must
  // actually have hit (static topology => one miss, then hits).
  auto run_side = [](std::size_t cache) {
    Workbench wb(311);
    build_gateway_chain(wb);
    ControllerConfig cfg = live_config();
    cfg.planner_cache = cache;
    MeshController ctl(wb.net(), cfg, 311);
    add_gateway_flows(wb, ctl);
    std::vector<RatePlan> plans;
    for (int r = 0; r < 5; ++r) {
      const RoundResult round = ctl.run_round(wb);
      EXPECT_TRUE(round.ok) << "round " << r;
      plans.push_back(ctl.last_plan());
    }
    const PlannerStats stats = ctl.planner().stats();
    return std::pair{plans, stats};
  };

  const auto [cached_plans, cached_stats] = run_side(4);
  const auto [uncached_plans, uncached_stats] = run_side(0);
  ASSERT_EQ(cached_plans.size(), uncached_plans.size());
  for (std::size_t r = 0; r < cached_plans.size(); ++r)
    EXPECT_EQ(cached_plans[r], uncached_plans[r]) << "round " << r;

  EXPECT_EQ(cached_stats.misses, 1u);
  EXPECT_EQ(cached_stats.hits, 4u);
  EXPECT_EQ(uncached_stats.misses, 5u);
  EXPECT_EQ(uncached_stats.hits, 0u);
}

std::vector<MeasurementSnapshot> record_gateway_trace(int rounds,
                                                      std::uint64_t seed) {
  Workbench wb(seed);
  build_gateway_chain(wb);
  MeshController ctl(wb.net(), live_config(), seed);
  add_gateway_flows(wb, ctl);
  std::vector<MeasurementSnapshot> trace;
  LiveSource live(wb, ctl, rounds);
  MeasurementSnapshot snap;
  while (live.next(snap)) trace.push_back(snap);
  return trace;
}

TEST(Planner, ReplayPathCachedEqualsManualUncachedWalk) {
  const std::vector<MeasurementSnapshot> trace = record_gateway_trace(6, 331);
  ASSERT_EQ(trace.size(), 6u);

  ReplayCell cell;
  cell.flows.resize(2);
  cell.flows[0].flow_id = 0;
  cell.flows[0].path = {0, 1, 2};
  cell.flows[1].flow_id = 1;
  cell.flows[1].path = {3, 2};
  cell.plan = live_config().plan();

  ControllerFleet fleet(2);
  const std::vector<ReplayResult> cached = fleet.replay({cell}, trace);
  ASSERT_EQ(cached.size(), 1u);
  ASSERT_EQ(cached[0].plans.size(), trace.size());
  EXPECT_TRUE(cached[0].ok);

  // Manual uncached reference walk.
  for (std::size_t r = 0; r < trace.size(); ++r) {
    const InterferenceModel model =
        InterferenceModel::build(trace[r], cell.interference);
    EXPECT_EQ(cached[0].plans[r],
              plan_rates(trace[r], model, cell.flows, cell.plan))
        << "round " << r;
  }
}

TEST(Planner, ShardedReplayBitIdenticalAndThreadIndependent) {
  const std::vector<MeasurementSnapshot> trace = record_gateway_trace(7, 337);
  ASSERT_EQ(trace.size(), 7u);

  std::vector<ReplayCell> cells;
  for (const Objective obj : {Objective::kProportionalFair,
                              Objective::kMaxThroughput}) {
    ReplayCell cell;
    cell.flows.resize(2);
    cell.flows[0].flow_id = 0;
    cell.flows[0].path = {0, 1, 2};
    cell.flows[1].flow_id = 1;
    cell.flows[1].path = {3, 2};
    cell.plan.optimizer.objective = obj;
    cells.push_back(std::move(cell));
  }

  ControllerFleet serial(1);
  ControllerFleet parallel(4);
  const auto unsharded = serial.replay(cells, trace);

  // Segment sizes that tile the 7 rounds unevenly (3+3+1), per round, and
  // longer than the trace — all must stitch to the identical result, on
  // one thread and on four.
  for (const int seg : {1, 3, 100}) {
    ReplayOptions opts;
    opts.segment_rounds = seg;
    const auto a = serial.replay(cells, trace, opts);
    const auto b = parallel.replay(cells, trace, opts);
    ASSERT_EQ(a.size(), cells.size());
    for (std::size_t c = 0; c < cells.size(); ++c) {
      EXPECT_EQ(a[c].index, static_cast<int>(c));
      EXPECT_EQ(a[c].ok, unsharded[c].ok) << "seg " << seg;
      EXPECT_EQ(a[c].plans, unsharded[c].plans) << "seg " << seg;
      EXPECT_EQ(b[c].plans, unsharded[c].plans) << "seg " << seg;
    }
  }

  // Uncached replay (planner_cache = 0) is the same bits again.
  ReplayOptions uncached;
  uncached.planner_cache = 0;
  uncached.segment_rounds = 2;
  const auto raw = serial.replay(cells, trace, uncached);
  for (std::size_t c = 0; c < cells.size(); ++c)
    EXPECT_EQ(raw[c].plans, unsharded[c].plans);
}

TEST(Planner, RegionReusesModelExtremePoints) {
  // The FeasibilityRegion consumers' path: region() must wrap the model's
  // already-built matrix (no re-enumeration), so its points match the
  // one-shot build_extreme_point_matrix output exactly.
  const MeasurementSnapshot snap = lir_snapshot(14, 41);
  const InterferenceModel model =
      InterferenceModel::build(snap, InterferenceModelKind::kLirTable);
  const FeasibilityRegion region = model.region();
  EXPECT_EQ(region.points(), model.extreme_points());
  EXPECT_EQ(region.points(),
            build_extreme_point_matrix(snap.capacities(), model.conflicts()));
  // A plan's link load is feasible in its own region.
  std::vector<double> load(snap.links.size(), 0.0);
  EXPECT_TRUE(region.contains(load));
}

TEST(Planner, StatsSnapshotIsPureAndResetKeepsCacheResident) {
  const MeasurementSnapshot snap = lir_snapshot(12, 47);
  Planner planner(2);

  // Snapshotting must never disturb the counters (the serving layer diffs
  // two snapshots per metrics window, so a mutating read would corrupt
  // every window after the first).
  (void)planner.model(snap, InterferenceModelKind::kLirTable);
  (void)planner.model(snap, InterferenceModelKind::kLirTable);
  const PlannerStats before = planner.stats_snapshot();
  EXPECT_EQ(before.misses, 1u);
  EXPECT_EQ(before.hits, 1u);
  for (int i = 0; i < 3; ++i) {
    const PlannerStats again = planner.stats_snapshot();
    EXPECT_EQ(again.hits, before.hits);
    EXPECT_EQ(again.misses, before.misses);
    EXPECT_EQ(again.evictions, before.evictions);
    EXPECT_EQ(again.uncacheable_plans, before.uncacheable_plans);
  }
  // The snapshot is a value copy: further planner work moves the live
  // counters, not the copy.
  (void)planner.model(snap, InterferenceModelKind::kLirTable);
  EXPECT_EQ(planner.stats().hits, 2u);
  EXPECT_EQ(before.hits, 1u);

  // reset_stats zeroes the window but — unlike clear() — keeps the cache
  // resident: the next same-topology call is a HIT, not a re-enumeration.
  planner.reset_stats();
  EXPECT_EQ(planner.stats().hits, 0u);
  EXPECT_EQ(planner.stats().misses, 0u);
  EXPECT_EQ(planner.cached_topologies(), 1u);
  (void)planner.model(snap, InterferenceModelKind::kLirTable);
  EXPECT_EQ(planner.stats().hits, 1u);
  EXPECT_EQ(planner.stats().misses, 0u);
}

}  // namespace
}  // namespace meshopt
