// Guards for the event-core rewrite and the sweep runner's RNG isolation:
// identical seeds must give bit-identical simulations — same event counts,
// same MAC counters, same queue state, same measured throughputs.

#include <gtest/gtest.h>

#include <vector>

#include "scenario/testbed.h"
#include "scenario/workbench.h"
#include "sim/simulator.h"

namespace meshopt {
namespace {

struct RunFingerprint {
  std::uint64_t executed = 0;
  std::size_t pending = 0;
  TimeNs now = 0;
  std::vector<MacStats> mac;
  std::vector<double> throughput;

  bool operator==(const RunFingerprint& o) const {
    if (executed != o.executed || pending != o.pending || now != o.now ||
        mac.size() != o.mac.size() || throughput != o.throughput)
      return false;
    for (std::size_t i = 0; i < mac.size(); ++i) {
      const MacStats& a = mac[i];
      const MacStats& b = o.mac[i];
      if (a.tx_attempts != b.tx_attempts || a.tx_success != b.tx_success ||
          a.tx_dropped != b.tx_dropped || a.rx_delivered != b.rx_delivered ||
          a.rx_duplicates != b.rx_duplicates ||
          a.queue_rejections != b.queue_rejections)
        return false;
    }
    return true;
  }
};

RunFingerprint run_scenario(std::uint64_t seed) {
  Workbench wb(seed);
  wb.add_nodes(4);
  Channel& ch = wb.channel();
  for (NodeId a = 0; a < 4; ++a)
    for (NodeId b = 0; b < 4; ++b)
      if (a != b) ch.set_rss_dbm(a, b, -120.0);
  ch.set_rss_symmetric_dbm(0, 1, -58.0);
  ch.set_rss_symmetric_dbm(1, 2, -58.0);
  ch.set_rss_symmetric_dbm(3, 2, -56.0);
  ch.set_rss_symmetric_dbm(1, 3, -70.0);

  const std::vector<LinkRef> links = {
      {0, 1, Rate::kR11Mbps},
      {3, 2, Rate::kR11Mbps},
  };
  RunFingerprint fp;
  fp.throughput = wb.measure_backlogged(links, 2.0);

  fp.executed = wb.sim().executed_events();
  fp.pending = wb.sim().pending_events();
  fp.now = wb.sim().now();
  for (NodeId n = 0; n < 4; ++n) fp.mac.push_back(wb.net().node(n).mac().stats());
  return fp;
}

TEST(Determinism, IdenticalSeedsBitIdenticalRuns) {
  const RunFingerprint a = run_scenario(42);
  const RunFingerprint b = run_scenario(42);
  EXPECT_GT(a.executed, 1000u) << "scenario too trivial to guard anything";
  EXPECT_TRUE(a == b);
}

TEST(Determinism, DifferentSeedsDiverge) {
  const RunFingerprint a = run_scenario(42);
  const RunFingerprint b = run_scenario(43);
  // Fading and backoff draws differ, so the event trajectories must too.
  EXPECT_FALSE(a == b);
}

TEST(Determinism, TestbedScenarioReproduces) {
  // A heavier scenario through the full stack: geometry, SNR error model,
  // several concurrent links.
  auto run = [](std::uint64_t seed) {
    Workbench wb(seed);
    Testbed tb(wb, TestbedConfig{.seed = seed});
    const auto links = tb.usable_links(Rate::kR11Mbps);
    std::vector<LinkRef> sel;
    for (std::size_t i = 0; i < links.size() && sel.size() < 4; i += 7)
      sel.push_back(links[i]);
    RunFingerprint fp;
    fp.throughput = wb.measure_backlogged(sel, 1.0);
    fp.executed = wb.sim().executed_events();
    fp.pending = wb.sim().pending_events();
    fp.now = wb.sim().now();
    return fp;
  };
  EXPECT_TRUE(run(7) == run(7));
}

TEST(Determinism, ScheduleBeforeParkedHeadStaysOrdered) {
  // Regression: run_until breaking at the horizon leaves the calendar
  // cursor at the far head's day; an event then scheduled into an earlier
  // day (and a different bucket) must still fire first, and time must
  // never move backwards.
  Simulator sim;
  std::vector<int> order;
  const TimeNs far = micros(1638);   // day ~100 at the initial 2^14 width
  const TimeNs near = micros(344);   // day ~21, different bucket mod 16
  sim.schedule_at(far, [&] { order.push_back(2); });
  sim.run_until(micros(10));  // parks the cursor at the far head
  sim.schedule_at(near, [&] { order.push_back(1); });
  TimeNs last = 0;
  sim.schedule_at(near, [&] { last = sim.now(); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), far);
  EXPECT_EQ(last, near);
}

TEST(Determinism, CancelHeavyChurnReproduces) {
  // Exercise slot reuse and generation stamping directly: interleaved
  // schedule/cancel with same-time ties must replay exactly.
  auto run = [] {
    Simulator sim;
    std::vector<int> order;
    std::vector<EventId> ids;
    for (int round = 0; round < 50; ++round) {
      for (int i = 0; i < 20; ++i) {
        const int tag = round * 100 + i;
        ids.push_back(sim.schedule(millis(i % 5),
                                   [&order, tag] { order.push_back(tag); }));
      }
      for (std::size_t i = 0; i < ids.size(); i += 3) sim.cancel(ids[i]);
      sim.run_until(sim.now() + millis(3));
      ids.clear();
    }
    sim.run();
    return order;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace meshopt
