// Dynamics subsystem tests: script ordering/merging, generator
// determinism (pure functions of the RNG stream), node leave/join RSS
// save-restore exactness, loss-drift overlay semantics, interferer
// carrier-sense effects, churn driving the topology fingerprint and the
// planner cache, and dynamic-scenario fleet bit-identity across thread
// counts.

#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/controller.h"
#include "core/planner.h"
#include "scenario/dynamics.h"
#include "scenario/topologies.h"
#include "scenario/workbench.h"
#include "sweep/controller_fleet.h"
#include "util/rng.h"

namespace meshopt {
namespace {

TEST(DynamicsScript, AddAndMergeKeepTimeOrder) {
  DynamicsScript script;
  NetEvent late;
  late.at_s = 5.0;
  late.kind = NetEventKind::kNodeLeave;
  late.node = 2;
  NetEvent early;
  early.at_s = 1.0;
  early.kind = NetEventKind::kLinkRss;
  early.src = 0;
  early.dst = 1;
  early.value = -70.0;
  script.add(late).add(early);
  ASSERT_EQ(script.events.size(), 2u);
  EXPECT_EQ(script.events[0].kind, NetEventKind::kLinkRss);
  EXPECT_EQ(script.events[1].kind, NetEventKind::kNodeLeave);
  EXPECT_DOUBLE_EQ(script.horizon_s(), 5.0);

  DynamicsScript other = node_flap(3, 0.5, 4.0);
  script.merge(other);
  ASSERT_EQ(script.events.size(), 4u);
  EXPECT_DOUBLE_EQ(script.events[0].at_s, 0.5);  // leave
  EXPECT_EQ(script.events[0].kind, NetEventKind::kNodeLeave);
  EXPECT_DOUBLE_EQ(script.events[2].at_s, 4.0);  // rejoin
  EXPECT_EQ(script.events[2].kind, NetEventKind::kNodeJoin);

  // Stable sort: events at the same instant keep insertion order.
  DynamicsScript same_time;
  NetEvent a;
  a.at_s = 2.0;
  a.kind = NetEventKind::kInterfererOn;
  a.node = 7;
  NetEvent b;
  b.at_s = 2.0;
  b.kind = NetEventKind::kInterfererOff;
  b.node = 7;
  same_time.add(a).add(b);
  EXPECT_EQ(same_time.events[0].kind, NetEventKind::kInterfererOn);
  EXPECT_EQ(same_time.events[1].kind, NetEventKind::kInterfererOff);
}

TEST(DynamicsGenerators, DeterministicInSeedAndShapedRight) {
  const auto drift_a = random_walk_loss_drift(
      0, 1, Rate::kR11Mbps, 0.05, 0.02, 2.0, 40.0, RngStream(9, "drift"));
  const auto drift_b = random_walk_loss_drift(
      0, 1, Rate::kR11Mbps, 0.05, 0.02, 2.0, 40.0, RngStream(9, "drift"));
  const auto drift_c = random_walk_loss_drift(
      0, 1, Rate::kR11Mbps, 0.05, 0.02, 2.0, 40.0, RngStream(10, "drift"));
  ASSERT_EQ(drift_a.events.size(), 20u);
  for (std::size_t i = 0; i < drift_a.events.size(); ++i) {
    const NetEvent& e = drift_a.events[i];
    EXPECT_EQ(e.kind, NetEventKind::kLinkLoss);
    EXPECT_GE(e.value, 0.0);
    EXPECT_LE(e.value, 0.9);
    // Same stream => identical script, bit for bit.
    EXPECT_DOUBLE_EQ(e.value, drift_b.events[i].value);
    EXPECT_DOUBLE_EQ(e.at_s, drift_b.events[i].at_s);
  }
  // A different seed genuinely moves the walk.
  bool any_differs = false;
  for (std::size_t i = 1; i < drift_a.events.size(); ++i)
    any_differs = any_differs ||
                  drift_a.events[i].value != drift_c.events[i].value;
  EXPECT_TRUE(any_differs);

  const auto mk = markov_interferer(4, 3.0, 5.0, 100.0, RngStream(9, "mk"));
  const auto mk_same = markov_interferer(4, 3.0, 5.0, 100.0,
                                         RngStream(9, "mk"));
  ASSERT_GT(mk.events.size(), 1u);
  ASSERT_EQ(mk.events.size(), mk_same.events.size());
  // Alternating on/off starting with on; every event inside the horizon.
  for (std::size_t i = 0; i < mk.events.size(); ++i) {
    EXPECT_EQ(mk.events[i].kind, i % 2 == 0 ? NetEventKind::kInterfererOn
                                            : NetEventKind::kInterfererOff);
    EXPECT_LE(mk.events[i].at_s, 100.0);
    EXPECT_DOUBLE_EQ(mk.events[i].at_s, mk_same.events[i].at_s);
  }
  // The timeline is closed: the last event switches the interferer off.
  EXPECT_EQ(mk.events.back().kind, NetEventKind::kInterfererOff);
}

TEST(DynamicsEngine, NodeLeaveSilencesAndJoinRestoresExactly) {
  Workbench wb(17);
  build_gateway_chain(wb);
  Channel& ch = wb.channel();
  std::vector<double> before;
  for (NodeId a = 0; a < 4; ++a)
    for (NodeId b = 0; b < 4; ++b) before.push_back(ch.rss_dbm(a, b));

  DynamicsScript script = node_flap(3, 1.0, 2.0);
  DynamicsEngine engine(wb, std::move(script));
  engine.arm();

  wb.run_for(1.5);  // leave applied
  EXPECT_EQ(engine.applied(), 1);
  for (NodeId m = 0; m < 4; ++m) {
    if (m == 3) continue;
    EXPECT_LE(ch.rss_dbm(3, m), -150.0) << "3->" << m;
    EXPECT_LE(ch.rss_dbm(m, 3), -150.0) << m << "->3";
  }
  // Other links untouched.
  EXPECT_DOUBLE_EQ(ch.rss_dbm(0, 1), -58.0);

  wb.run_for(1.0);  // rejoin applied
  EXPECT_EQ(engine.applied(), 2);
  std::size_t i = 0;
  for (NodeId a = 0; a < 4; ++a)
    for (NodeId b = 0; b < 4; ++b)
      EXPECT_DOUBLE_EQ(ch.rss_dbm(a, b), before[i++]) << a << "->" << b;

  // A second leave of an already-left node is a no-op (no double save),
  // and joining a node that never left is a no-op too.
  DynamicsScript again;
  NetEvent leave;
  leave.at_s = 3.0;
  leave.kind = NetEventKind::kNodeLeave;
  leave.node = 3;
  NetEvent leave2 = leave;
  leave2.at_s = 3.1;
  NetEvent join_other;
  join_other.at_s = 3.2;
  join_other.kind = NetEventKind::kNodeJoin;
  join_other.node = 1;
  NetEvent join;
  join.at_s = 3.3;
  join.kind = NetEventKind::kNodeJoin;
  join.node = 3;
  again.add(leave).add(leave2).add(join_other).add(join);
  DynamicsEngine engine2(wb, std::move(again));
  engine2.arm();
  wb.run_for(2.0);
  EXPECT_EQ(engine2.applied(), 4);
  i = 0;
  for (NodeId a = 0; a < 4; ++a)
    for (NodeId b = 0; b < 4; ++b)
      EXPECT_DOUBLE_EQ(ch.rss_dbm(a, b), before[i++]);
}

TEST(DynamicsEngine, ArmIsIdempotentAndNeverReplaysFiredEvents) {
  Workbench wb(23);
  build_gateway_chain(wb);
  Channel& ch = wb.channel();
  std::vector<double> before;
  for (NodeId a = 0; a < 4; ++a)
    for (NodeId b = 0; b < 4; ++b) before.push_back(ch.rss_dbm(a, b));

  DynamicsScript script = node_flap(3, 1.0, 2.0);
  NetEvent rss;
  rss.at_s = 3.0;
  rss.kind = NetEventKind::kLinkRss;
  rss.src = 0;
  rss.dst = 1;
  rss.value = -61.0;
  script.add(rss);

  DynamicsEngine engine(wb, std::move(script));
  // Double arm before anything fires: every event must still apply once.
  engine.arm();
  engine.arm();
  wb.run_for(1.5);
  EXPECT_EQ(engine.applied(), 1);  // the leave fired exactly once

  // Re-arm mid-run: the fired leave must not replay, and the still-pending
  // rejoin and RSS step must not double-schedule.
  engine.arm();
  wb.run_for(1.0);  // t = 2.5: the rejoin fired
  EXPECT_EQ(engine.applied(), 2);
  std::size_t i = 0;
  for (NodeId a = 0; a < 4; ++a)
    for (NodeId b = 0; b < 4; ++b)
      EXPECT_DOUBLE_EQ(ch.rss_dbm(a, b), before[i++]) << a << "->" << b;

  wb.run_for(1.0);  // t = 3.5: the RSS step fired
  EXPECT_EQ(engine.applied(), 3);
  EXPECT_DOUBLE_EQ(ch.rss_dbm(0, 1), -61.0);

  // Re-arm after the whole script fired: nothing replays, nothing moves.
  engine.arm();
  wb.run_for(1.0);
  EXPECT_EQ(engine.applied(), 3);
  EXPECT_DOUBLE_EQ(ch.rss_dbm(0, 1), -61.0);
}

TEST(DynamicsEngine, LossOverlayOverridesAndFallsThrough) {
  Workbench wb(19);
  wb.add_nodes(2);
  wb.channel().set_rss_symmetric_dbm(0, 1, -58.0);
  auto base = std::make_shared<TableErrorModel>();
  base->set(0, 1, Rate::kR11Mbps, 0.25);
  base->set(1, 0, Rate::kR11Mbps, 0.5);
  wb.channel().set_error_model(base);

  DynamicsScript script;
  NetEvent e;
  e.at_s = 1.0;
  e.kind = NetEventKind::kLinkLoss;
  e.src = 0;
  e.dst = 1;
  e.rate = Rate::kR11Mbps;
  e.value = 0.8;
  script.add(e);
  DynamicsEngine engine(wb, std::move(script));
  engine.arm();
  wb.run_for(1.5);

  const ErrorModel& model = wb.channel().error_model();
  // Overridden pair reads the event's value.
  EXPECT_DOUBLE_EQ(model.per(0, 1, Rate::kR11Mbps, FrameType::kData), 0.8);
  // Everything else falls through to the pre-arm model.
  EXPECT_DOUBLE_EQ(model.per(1, 0, Rate::kR11Mbps, FrameType::kData), 0.5);
  EXPECT_DOUBLE_EQ(model.per(0, 1, Rate::kR1Mbps, FrameType::kData), 0.0);
}

TEST(DynamicsEngine, InterfererRaisesCarrierSenseWhileOn) {
  // A passive interferer node heard at -70 dBm (above the -82 dBm CS
  // threshold): while it duty-cycles, the victim's carrier must read busy
  // during its frames; once off, it must go (and stay) idle.
  Workbench wb(23);
  wb.add_nodes(1);
  const NodeId interferer = wb.channel().add_node(nullptr);
  wb.channel().set_rss_dbm(interferer, 0, -70.0);

  DynamicsScript script;
  NetEvent on;
  on.at_s = 1.0;
  on.kind = NetEventKind::kInterfererOn;
  on.node = interferer;
  on.period_s = 0.01;
  on.duty = 1.0;  // clamped to 0.95 internally: near-continuous jamming
  NetEvent off;
  off.at_s = 2.0;
  off.kind = NetEventKind::kInterfererOff;
  off.node = interferer;
  script.add(on).add(off);
  DynamicsEngine engine(wb, std::move(script));
  engine.arm();

  EXPECT_FALSE(engine.interferer_active(interferer));
  // Sample mid-frame: at 95% duty, 2.5 ms into a 10 ms period is on-air.
  wb.run_for(1.0025);
  EXPECT_TRUE(engine.interferer_active(interferer));
  EXPECT_TRUE(wb.channel().carrier_busy(0));
  wb.run_for(1.5);  // past the off event
  EXPECT_FALSE(engine.interferer_active(interferer));
  EXPECT_FALSE(wb.channel().carrier_busy(0));
}

TEST(DynamicsEngine, TrafficStartStopDrivesAndHaltsAFlow) {
  Workbench wb(29);
  wb.add_nodes(2);
  wb.channel().set_rss_symmetric_dbm(0, 1, -58.0);

  DynamicsScript script;
  NetEvent start;
  start.at_s = 0.5;
  start.kind = NetEventKind::kTrafficStart;
  start.traffic_id = 1;
  start.path = {0, 1};
  start.rate = Rate::kR11Mbps;
  start.value = 2e6;
  NetEvent stop;
  stop.at_s = 2.5;
  stop.kind = NetEventKind::kTrafficStop;
  stop.traffic_id = 1;
  NetEvent restart = start;
  restart.at_s = 5.5;
  script.add(start).add(stop).add(restart);
  DynamicsEngine engine(wb, std::move(script));
  engine.arm();

  wb.run_for(2.0);
  ASSERT_EQ(wb.net().flow_count(), 1);
  const std::uint64_t delivered_while_on = wb.net().flow(0).delivered_packets;
  EXPECT_GT(delivered_while_on, 100u);  // ~2 Mb/s of 1470 B packets, 1.5 s

  wb.run_for(2.0);  // stop applied at 2.5 s; let the queue drain
  const std::uint64_t after_stop = wb.net().flow(0).delivered_packets;
  wb.run_for(1.0);
  EXPECT_LE(wb.net().flow(0).delivered_packets, after_stop + 5);

  // Re-start of the same traffic_id resumes the SAME flow (one
  // accounting record, no new flow) and traffic flows again.
  wb.run_for(1.5);  // restart applied at 5.5 s
  EXPECT_EQ(wb.net().flow_count(), 1);
  EXPECT_GT(wb.net().flow(0).delivered_packets, after_stop + 100);
}

ControllerConfig churn_config() {
  ControllerConfig cfg;
  cfg.probe_period_s = 0.25;
  cfg.probe_window = 40;
  cfg.optimizer.objective = Objective::kProportionalFair;
  return cfg;
}

TEST(DynamicsEngine, ChurnMovesFingerprintAndPlannerReacts) {
  // Live controller over a gateway whose cross node flaps: rounds before
  // the leave share one fingerprint (planner hits), the leave and rejoin
  // rounds each force a miss, and the post-rejoin fingerprint matches the
  // initial one (the topology genuinely restored => cache re-hit).
  Workbench wb(37);
  build_gateway_chain(wb);
  MeshController ctl(wb.net(), churn_config(), 37);
  ManagedFlow far;
  far.flow_id = wb.net().open_flow(0, 2, Protocol::kUdp, 1470);
  far.path = {0, 1, 2};
  ctl.manage_flow(far);
  ManagedFlow near;
  near.flow_id = wb.net().open_flow(3, 2, Protocol::kUdp, 1470);
  near.path = {3, 2};
  ctl.manage_flow(near);

  const double window_s = ctl.probing_window_seconds();  // 10 s
  DynamicsScript script = node_flap(3, 2.2 * window_s, 4.2 * window_s);
  DynamicsEngine engine(wb, std::move(script));
  engine.arm();

  std::vector<std::uint64_t> fingerprints;
  for (int r = 0; r < 6; ++r) {
    (void)ctl.run_round(wb);
    fingerprints.push_back(ctl.snapshot().topology_fingerprint());
  }
  // Rounds 0-2 (leave applies during round 2's window): stable prefix.
  EXPECT_EQ(fingerprints[0], fingerprints[1]);
  // The node-3-gone rounds differ from the stable prefix.
  EXPECT_NE(fingerprints[3], fingerprints[0]);
  // After rejoin the original topology (and fingerprint) returns.
  EXPECT_EQ(fingerprints[5], fingerprints[0]);

  // Planner saw exactly the distinct topology epochs, not one per round:
  // misses = distinct fingerprints seen first, everything else hit.
  const PlannerStats stats = ctl.planner().stats();
  EXPECT_EQ(stats.hits + stats.misses, 6u);
  EXPECT_GE(stats.hits, 3u);
  EXPECT_LE(stats.misses, 3u);
}

TEST(DynamicsFleet, DynamicCellsBitIdenticalAcrossThreadCounts) {
  // A fleet of dynamic scenarios: each cell derives its perturbations
  // (interferer flapping + loss drift + a node flap) from its cell seed.
  // Results on 1 worker and on 4 must be bit-for-bit identical.
  auto make_cells = [] {
    std::vector<FleetCell> cells;
    for (int v = 0; v < 4; ++v) {
      FleetCell cell;
      cell.build_topology = [](Workbench& wb) {
        build_gateway_chain(wb);
        // Passive interferer heard only by the gateway's receiver.
        const NodeId jam = wb.channel().add_node(nullptr);
        wb.channel().set_rss_dbm(jam, 2, -66.0);
      };
      cell.flows = {FleetFlow{{0, 1, 2}}, FleetFlow{{3, 2}}};
      cell.controller = churn_config();
      cell.rounds = 3;
      cell.dynamics = [](std::uint64_t seed) {
        DynamicsScript script =
            markov_interferer(4, 4.0, 6.0, 30.0, RngStream(seed, "jam"));
        script.merge(random_walk_loss_drift(0, 1, Rate::kR1Mbps, 0.02, 0.01,
                                            5.0, 30.0,
                                            RngStream(seed, "drift")));
        script.merge(node_flap(3, 12.0, 22.0));
        return script;
      };
      cells.push_back(std::move(cell));
    }
    return cells;
  };

  ControllerFleet serial(1);
  ControllerFleet parallel(4);
  const auto a = serial.run(make_cells(), 77);
  const auto b = parallel.run(make_cells(), 77);
  ASSERT_EQ(a.size(), 4u);
  ASSERT_EQ(b.size(), 4u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, b[i].index);
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].ok, b[i].ok);
    EXPECT_EQ(a[i].snapshot, b[i].snapshot) << "cell " << i;
    EXPECT_EQ(a[i].plan, b[i].plan) << "cell " << i;
  }
  // Different seeds genuinely produce different measured conditions.
  EXPECT_NE(a[0].snapshot, a[1].snapshot);
}

}  // namespace
}  // namespace meshopt
