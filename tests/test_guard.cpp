// Guard-layer tests: snapshot validator edge cases (NaN/Inf/negative
// loss, capacity outliers, asymmetric neighbors, zero-link snapshots,
// coverage rejection, strict mode), plan guardrails, and the controller's
// resilience state machine — clean-path plan identity, trust decay,
// fallback entry, exponential backoff, and fallback -> recovery
// sequences.

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/controller.h"
#include "core/guard.h"
#include "core/planner.h"
#include "core/snapshot.h"
#include "phy/radio.h"
#include "probe/live_source.h"
#include "scenario/topologies.h"
#include "scenario/workbench.h"

namespace meshopt {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

SnapshotLink make_link(NodeId src, NodeId dst, double capacity_bps,
                       Rate rate = Rate::kR11Mbps) {
  SnapshotLink l;
  l.src = src;
  l.dst = dst;
  l.rate = rate;
  l.estimate.p_data = 0.1;
  l.estimate.p_ack = 0.05;
  l.estimate.p_link = 0.1;
  l.estimate.capacity_bps = capacity_bps;
  return l;
}

MeasurementSnapshot chain_snapshot() {
  MeasurementSnapshot snap;
  snap.links = {make_link(0, 1, 4e6), make_link(1, 2, 3e6)};
  snap.neighbors = {{0, 1}, {1, 2}};
  return snap;
}

// ----------------------------------------------------- SnapshotValidator

TEST(SnapshotValidator, CleanSnapshotIsUntouched) {
  MeasurementSnapshot snap = chain_snapshot();
  const MeasurementSnapshot before = snap;
  const ValidationReport report = SnapshotValidator().validate(snap);
  EXPECT_EQ(report.verdict, SnapshotVerdict::kClean);
  EXPECT_TRUE(report.usable());
  EXPECT_TRUE(report.issues.empty());
  EXPECT_EQ(report.links_checked, 2);
  EXPECT_EQ(report.links_clamped, 0);
  EXPECT_EQ(report.links_dropped, 0);
  EXPECT_EQ(snap, before);
}

TEST(SnapshotValidator, NonFiniteLossDropsTheLink) {
  for (const double poison : {kNan, kInf, -kInf}) {
    MeasurementSnapshot snap = chain_snapshot();
    snap.links[0].estimate.p_data = poison;
    const ValidationReport report = SnapshotValidator().validate(snap);
    EXPECT_EQ(report.verdict, SnapshotVerdict::kRepaired);
    EXPECT_EQ(report.links_dropped, 1);
    ASSERT_EQ(snap.links.size(), 1u);
    EXPECT_EQ(snap.links[0].src, 1);  // the poisoned link is gone
    ASSERT_EQ(report.issues.size(), 1u);
    EXPECT_EQ(report.issues[0].kind, IssueKind::kNonFiniteLoss);
    EXPECT_EQ(report.issues[0].link, 0);
    EXPECT_TRUE(report.issues[0].repaired);
  }
}

TEST(SnapshotValidator, FiniteOutOfRangeLossIsClampedInPlace) {
  MeasurementSnapshot snap = chain_snapshot();
  snap.links[0].estimate.p_data = -0.25;  // below range
  snap.links[1].estimate.p_ack = 1.5;     // above range
  const ValidationReport report = SnapshotValidator().validate(snap);
  EXPECT_EQ(report.verdict, SnapshotVerdict::kRepaired);
  EXPECT_EQ(report.links_clamped, 2);
  EXPECT_EQ(report.links_dropped, 0);
  ASSERT_EQ(snap.links.size(), 2u);
  EXPECT_DOUBLE_EQ(snap.links[0].estimate.p_data, 0.0);
  EXPECT_DOUBLE_EQ(snap.links[1].estimate.p_ack, 1.0);
}

TEST(SnapshotValidator, CapacityFaultsDropOrClamp) {
  // NaN capacity: dropped (nothing to clamp to).
  MeasurementSnapshot snap = chain_snapshot();
  snap.links[0].estimate.capacity_bps = kNan;
  ValidationReport report = SnapshotValidator().validate(snap);
  EXPECT_EQ(report.links_dropped, 1);
  EXPECT_EQ(report.issues[0].kind, IssueKind::kNonFiniteCapacity);

  // Negative capacity: dropped.
  snap = chain_snapshot();
  snap.links[0].estimate.capacity_bps = -1e6;
  report = SnapshotValidator().validate(snap);
  EXPECT_EQ(report.links_dropped, 1);
  EXPECT_EQ(report.issues[0].kind, IssueKind::kCapacityOutOfRange);

  // Outlier far above the PHY rate: clamped down to the rate bound.
  snap = chain_snapshot();
  snap.links[0].estimate.capacity_bps = 1e12;
  report = SnapshotValidator().validate(snap);
  EXPECT_EQ(report.verdict, SnapshotVerdict::kRepaired);
  EXPECT_EQ(report.links_clamped, 1);
  EXPECT_DOUBLE_EQ(snap.links[0].estimate.capacity_bps,
                   rate_bps(Rate::kR11Mbps));
}

TEST(SnapshotValidator, AsymmetricNeighborsNormalize) {
  // A recording carrying (b, a) alongside (a, b), plus a self-pair: the
  // repair tier restores the sorted first<second invariant.
  MeasurementSnapshot snap = chain_snapshot();
  snap.neighbors = {{1, 0}, {0, 1}, {2, 2}, {1, 2}};
  const ValidationReport report = SnapshotValidator().validate(snap);
  EXPECT_EQ(report.verdict, SnapshotVerdict::kRepaired);
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].kind, IssueKind::kMalformedNeighbors);
  const std::vector<std::pair<NodeId, NodeId>> want = {{0, 1}, {1, 2}};
  EXPECT_EQ(snap.neighbors, want);
}

TEST(SnapshotValidator, ZeroLinkSnapshotIsRejected) {
  MeasurementSnapshot snap;  // a dropped probe window delivers this
  const ValidationReport report = SnapshotValidator().validate(snap);
  EXPECT_EQ(report.verdict, SnapshotVerdict::kRejected);
  EXPECT_FALSE(report.usable());
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].kind, IssueKind::kEmptySnapshot);
}

TEST(SnapshotValidator, AllLinksDroppedIsRejected) {
  MeasurementSnapshot snap = chain_snapshot();
  snap.links[0].estimate.p_data = kNan;
  snap.links[1].estimate.capacity_bps = kInf;
  const ValidationReport report = SnapshotValidator().validate(snap);
  EXPECT_EQ(report.verdict, SnapshotVerdict::kRejected);
  EXPECT_EQ(report.links_dropped, 2);
}

TEST(SnapshotValidator, CoverageBelowThresholdRejects) {
  const std::vector<LinkRef> expected = {
      {0, 1, Rate::kR11Mbps}, {1, 2, Rate::kR11Mbps},
      {2, 3, Rate::kR11Mbps}, {3, 4, Rate::kR11Mbps}};

  // 1 of 4 expected links present: 25% coverage < the 50% floor.
  MeasurementSnapshot snap;
  snap.links = {make_link(0, 1, 4e6)};
  ValidationReport report = SnapshotValidator().validate(snap, &expected);
  EXPECT_EQ(report.verdict, SnapshotVerdict::kRejected);
  EXPECT_EQ(report.links_missing, 3);

  // Exactly at the floor: usable, but flagged (and never cached — the
  // verdict is kRepaired, not kClean).
  snap = chain_snapshot();
  report = SnapshotValidator().validate(snap, &expected);
  EXPECT_EQ(report.verdict, SnapshotVerdict::kRepaired);
  EXPECT_EQ(report.links_missing, 2);
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].kind, IssueKind::kMissingLinks);
}

TEST(SnapshotValidator, StrictModeRejectsInsteadOfRepairing) {
  SnapshotGuardConfig strict;
  strict.repair = false;
  MeasurementSnapshot snap = chain_snapshot();
  snap.links[0].estimate.p_data = -0.25;
  const MeasurementSnapshot sized = snap;
  const ValidationReport report = SnapshotValidator(strict).validate(snap);
  EXPECT_EQ(report.verdict, SnapshotVerdict::kRejected);
  // Strict mode still reports, and the link set is never rewritten.
  EXPECT_EQ(snap.links.size(), sized.links.size());
  EXPECT_FALSE(report.issues[0].repaired);
}

// --------------------------------------------------------- PlanValidator

RatePlan feasible_plan() {
  RatePlan plan;
  plan.ok = true;
  plan.y = {2e6};
  plan.x = {2.2e6};
  plan.shapers = {{7, 2.2e6}};
  return plan;
}

std::vector<FlowSpec> one_flow() {
  FlowSpec f;
  f.flow_id = 7;
  f.path = {0, 1, 2};
  return {f};
}

TEST(PlanValidator, AcceptsAFeasiblePlan) {
  const PlanCheck check =
      PlanValidator().validate(feasible_plan(), chain_snapshot(), one_flow());
  EXPECT_TRUE(check.ok);
  EXPECT_EQ(check.reason, nullptr);
}

TEST(PlanValidator, RejectsInfeasibleMissizedAndPoisonedPlans) {
  const MeasurementSnapshot snap = chain_snapshot();
  const std::vector<FlowSpec> flows = one_flow();
  const PlanValidator guard;

  RatePlan plan;  // ok == false
  EXPECT_FALSE(guard.validate(plan, snap, flows).ok);

  plan = feasible_plan();
  plan.y.push_back(1.0);  // not sized to the flow set
  EXPECT_FALSE(guard.validate(plan, snap, flows).ok);

  plan = feasible_plan();
  plan.y[0] = kNan;
  PlanCheck check = guard.validate(plan, snap, flows);
  EXPECT_FALSE(check.ok);
  EXPECT_EQ(check.flow, 0);

  plan = feasible_plan();
  plan.x[0] = -1.0;
  EXPECT_FALSE(guard.validate(plan, snap, flows).ok);

  plan = feasible_plan();
  plan.shapers[0].x_bps = kInf;
  EXPECT_FALSE(guard.validate(plan, snap, flows).ok);

  plan = feasible_plan();
  plan.y[0] = 2e9;  // above the absolute sanity bound
  EXPECT_FALSE(guard.validate(plan, snap, flows).ok);
}

TEST(PlanValidator, RejectsOutputAboveBottleneckCapacity) {
  RatePlan plan = feasible_plan();
  plan.y[0] = 3.5e6;  // above the 3 Mb/s bottleneck of link 1->2
  const PlanCheck check =
      PlanValidator().validate(plan, chain_snapshot(), one_flow());
  EXPECT_FALSE(check.ok);
  EXPECT_STREQ(check.reason, "output above bottleneck capacity");

  // Hops absent from the snapshot carry no bound (they were skipped by
  // plan_rates too): a flow over unknown links passes.
  FlowSpec elsewhere;
  elsewhere.flow_id = 7;
  elsewhere.path = {5, 6};
  plan.y[0] = 3.5e6;
  EXPECT_TRUE(
      PlanValidator().validate(plan, chain_snapshot(), {elsewhere}).ok);
}

// ------------------------------------------- controller state machine

ControllerConfig guard_test_config() {
  ControllerConfig cfg;
  cfg.probe_period_s = 0.25;
  cfg.probe_window = 40;
  cfg.optimizer.objective = Objective::kProportionalFair;
  return cfg;
}

/// Gateway-chain controller with the two standard flows, ready to sense.
struct GuardedRig {
  Workbench wb;
  MeshController ctl;

  explicit GuardedRig(std::uint64_t seed)
      : wb(seed), ctl(wb.net(), guard_test_config(), seed) {
    build_gateway_chain(wb);
    ManagedFlow far;
    far.flow_id = wb.net().open_flow(0, 2, Protocol::kUdp, 1470);
    far.path = {0, 1, 2};
    ctl.manage_flow(far);
    ManagedFlow near;
    near.flow_id = wb.net().open_flow(3, 2, Protocol::kUdp, 1470);
    near.path = {3, 2};
    ctl.manage_flow(near);
  }

  /// One sensed window's snapshot (advances the simulation).
  MeasurementSnapshot sense() {
    ctl.sense_window(wb);
    return ctl.snapshot();
  }
};

TEST(GuardedController, CleanPathMatchesUnguardedPlanBitForBit) {
  GuardedRig a(41);
  GuardedRig b(41);
  LiveSource source(b.wb, b.ctl);
  for (int r = 0; r < 3; ++r) {
    const RoundResult plain = a.ctl.run_round(a.wb);
    const RoundResult guarded = b.ctl.guarded_round(source);
    EXPECT_EQ(plain.ok, guarded.ok);
    EXPECT_EQ(guarded.health, HealthState::kHealthy);
    EXPECT_EQ(a.ctl.last_plan(), b.ctl.last_plan()) << "round " << r;
  }
  const HealthStats& stats = b.ctl.health_stats();
  EXPECT_EQ(stats.rounds, 3u);
  EXPECT_EQ(stats.healthy_rounds, 3u);
  EXPECT_EQ(stats.snapshots_clean, 3u);
  EXPECT_EQ(stats.fallback_entries, 0u);
  EXPECT_DOUBLE_EQ(b.ctl.trust(), 1.0);
}

TEST(GuardedController, RepairedSnapshotDegradesAndDecaysTrust) {
  GuardedRig rig(43);
  rig.ctl.set_guard(GuardConfig{});
  const MeasurementSnapshot good = rig.sense();

  // Healthy baseline.
  RoundResult round = rig.ctl.guarded_step(good);
  ASSERT_TRUE(round.ok);
  const std::vector<double> healthy_x = round.x;

  // Corrupt one link's loss: repaired -> DEGRADED, inputs scaled by the
  // decayed trust relative to what the same plan would actuate at full
  // trust.
  MeasurementSnapshot corrupt = good;
  corrupt.links[0].estimate.p_data = -0.4;
  round = rig.ctl.guarded_step(corrupt);
  ASSERT_TRUE(round.ok);
  EXPECT_EQ(round.health, HealthState::kDegraded);
  EXPECT_DOUBLE_EQ(rig.ctl.trust(), 0.9);
  const HealthStats& stats = rig.ctl.health_stats();
  EXPECT_EQ(stats.snapshots_repaired, 1u);
  EXPECT_EQ(stats.links_clamped, 1u);

  // Consecutive repaired rounds decay further, floored at min_trust.
  for (int r = 0; r < 8; ++r) (void)rig.ctl.guarded_step(corrupt);
  EXPECT_DOUBLE_EQ(rig.ctl.trust(), 0.5);

  // A clean round restores full trust and HEALTHY.
  round = rig.ctl.guarded_step(good);
  EXPECT_EQ(round.health, HealthState::kHealthy);
  EXPECT_DOUBLE_EQ(rig.ctl.trust(), 1.0);
  EXPECT_EQ(round.x, healthy_x);
}

TEST(GuardedController, RepairedSnapshotsNeverEnterThePlannerCache) {
  GuardedRig rig(47);
  rig.ctl.set_guard(GuardConfig{});
  const MeasurementSnapshot good = rig.sense();
  (void)rig.ctl.guarded_step(good);
  const std::size_t cached = rig.ctl.planner().cached_topologies();

  // A partial snapshot (one link missing) is repaired/flagged: its
  // shrunken topology must not displace or join the trusted entries.
  MeasurementSnapshot partial = good;
  partial.links.pop_back();
  for (int r = 0; r < 3; ++r) (void)rig.ctl.guarded_step(partial);
  EXPECT_EQ(rig.ctl.planner().cached_topologies(), cached);
}

TEST(GuardedController, FallbackHoldsLastGoodPlanAndRecovers) {
  GuardedRig rig(53);
  rig.ctl.set_guard(GuardConfig{});
  const MeasurementSnapshot good = rig.sense();

  RoundResult round = rig.ctl.guarded_step(good);
  ASSERT_TRUE(round.ok);
  const RatePlan good_plan = rig.ctl.last_good_plan();
  ASSERT_TRUE(good_plan.ok);

  // A dropped window (empty snapshot) rejects: FALLBACK, plan held.
  round = rig.ctl.guarded_step(MeasurementSnapshot{});
  EXPECT_FALSE(round.ok);
  EXPECT_EQ(round.health, HealthState::kFallback);
  EXPECT_TRUE(round.held);
  EXPECT_EQ(rig.ctl.last_good_plan(), good_plan);
  EXPECT_EQ(rig.ctl.health_stats().fallback_entries, 1u);
  EXPECT_EQ(rig.ctl.health_stats().snapshots_rejected, 1u);

  // Backoff: the next round is deliberately skipped (no re-plan attempt,
  // the window is still consumed).
  round = rig.ctl.guarded_step(good);
  EXPECT_EQ(round.health, HealthState::kFallback);
  EXPECT_EQ(rig.ctl.health_stats().backoff_skips, 1u);

  // The re-attempt sees a clean snapshot: recovery to HEALTHY.
  round = rig.ctl.guarded_step(good);
  EXPECT_TRUE(round.ok);
  EXPECT_EQ(round.health, HealthState::kHealthy);
  EXPECT_EQ(rig.ctl.health_stats().recoveries, 1u);
}

TEST(GuardedController, ConsecutiveFailuresBackOffExponentially) {
  GuardedRig rig(59);
  GuardConfig guard;
  guard.backoff_start = 1;
  guard.backoff_max = 4;
  rig.ctl.set_guard(guard);
  const MeasurementSnapshot good = rig.sense();
  (void)rig.ctl.guarded_step(good);

  // Feed only empty snapshots. Attempts happen at the rounds where the
  // backoff window has elapsed: fail, skip, fail, skip x2, fail, then the
  // wait saturates at backoff_max.
  std::vector<std::uint64_t> rejected_after;
  for (int r = 0; r < 12; ++r) {
    (void)rig.ctl.guarded_step(MeasurementSnapshot{});
    rejected_after.push_back(rig.ctl.health_stats().snapshots_rejected);
  }
  // Rejections (= actual re-plan attempts) land at rounds 0, 2, 5, 10:
  // gaps of 1, 2, 4, then clamped at 4.
  const std::vector<std::uint64_t> want = {1, 1, 2, 2, 2, 3, 3, 3, 3, 3, 4, 4};
  EXPECT_EQ(rejected_after, want);
  EXPECT_EQ(rig.ctl.health_stats().fallback_entries, 1u);

  // Recovery still works from deep backoff once input heals and the
  // current window elapses.
  for (int r = 0; r < 5; ++r) {
    const RoundResult round = rig.ctl.guarded_step(good);
    if (round.ok) break;
  }
  EXPECT_EQ(rig.ctl.health(), HealthState::kHealthy);
  EXPECT_EQ(rig.ctl.health_stats().recoveries, 1u);
}

TEST(GuardedController, ExhaustedSourceReportsInsteadOfPlanning) {
  GuardedRig rig(61);
  LiveSource source(rig.wb, rig.ctl, /*max_windows=*/1);
  RoundResult round = rig.ctl.guarded_round(source);
  EXPECT_TRUE(round.ok);
  round = rig.ctl.guarded_round(source);
  EXPECT_TRUE(round.exhausted);
  EXPECT_FALSE(round.ok);
  EXPECT_EQ(rig.ctl.health_stats().rounds, 1u);  // no round consumed
}

}  // namespace
}  // namespace meshopt
