// Staged control-plane pipeline tests: snapshot → model → plan as pure
// value types, JSON replay bit-identity against the live controller, and
// fleet-scale determinism across thread counts.

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/controller.h"
#include "core/interference.h"
#include "core/rate_plan.h"
#include "core/snapshot.h"
#include "scenario/workbench.h"
#include "sweep/controller_fleet.h"
#include "util/json.h"

namespace meshopt {
namespace {

/// Chain topology 0-1-2 plus a 1-hop cross flow 3->2 (the starvation
/// gateway scenario, as in test_controller.cpp).
void build_gateway(Workbench& wb) {
  wb.add_nodes(4);
  Channel& ch = wb.channel();
  for (NodeId a = 0; a < 4; ++a)
    for (NodeId b = 0; b < 4; ++b)
      if (a != b) ch.set_rss_dbm(a, b, -120.0);
  ch.set_rss_symmetric_dbm(0, 1, -58.0);
  ch.set_rss_symmetric_dbm(1, 2, -58.0);
  ch.set_rss_symmetric_dbm(3, 2, -56.0);
  ch.set_rss_symmetric_dbm(1, 3, -70.0);
}

ControllerConfig quick_config() {
  ControllerConfig cfg;
  cfg.probe_period_s = 0.25;
  cfg.probe_window = 60;
  cfg.optimizer.objective = Objective::kProportionalFair;
  return cfg;
}

/// Sets up the two-flow gateway controller and runs the sense phase.
struct LiveRound {
  Workbench wb;
  MeshController ctl;

  explicit LiveRound(std::uint64_t seed, ControllerConfig cfg)
      : wb(seed), ctl((build_gateway(wb), wb.net()), cfg, seed) {
    ManagedFlow two_hop;
    two_hop.flow_id = wb.net().open_flow(0, 2, Protocol::kUdp, 1470);
    two_hop.path = {0, 1, 2};
    ctl.manage_flow(two_hop);
    ManagedFlow one_hop;
    one_hop.flow_id = wb.net().open_flow(3, 2, Protocol::kUdp, 1470);
    one_hop.path = {3, 2};
    ctl.manage_flow(one_hop);
  }

  void probe() {
    ctl.start_probing();
    wb.run_for(ctl.probing_window_seconds() + 0.5);
    ctl.update_estimates();
  }
};

TEST(Json, ValueRoundTripsExactDoublesAndEscapes) {
  std::string doc = "{\"a\":";
  json_append_double(doc, 0.1);
  doc += ",\"b\":";
  json_append_double(doc, 6.626070150e-34);
  doc += ",\"s\":";
  json_append_string(doc, "line\n\"quoted\"\tend");
  doc += ",\"arr\":[1,2.5,-3e2],\"t\":true,\"n\":null}";

  const JsonValue v = JsonValue::parse(doc);
  EXPECT_EQ(v.at("a").as_number(), 0.1);
  EXPECT_EQ(v.at("b").as_number(), 6.626070150e-34);
  EXPECT_EQ(v.at("s").as_string(), "line\n\"quoted\"\tend");
  ASSERT_EQ(v.at("arr").items().size(), 3u);
  EXPECT_EQ(v.at("arr").items()[2].as_number(), -300.0);
  EXPECT_TRUE(v.at("t").as_bool());
  EXPECT_TRUE(v.at("n").is_null());
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW((void)JsonValue::parse("{\"a\":}"), std::invalid_argument);
  EXPECT_THROW((void)JsonValue::parse("[1,2] extra"), std::invalid_argument);
  // Hostile nesting fails with the documented exception, not a stack
  // overflow.
  EXPECT_THROW((void)JsonValue::parse(std::string(100000, '[')),
               std::invalid_argument);
}

TEST(ControlPlane, SnapshotJsonRoundTripIsExact) {
  LiveRound live(101, quick_config());
  live.probe();

  const MeasurementSnapshot& snap = live.ctl.snapshot();
  ASSERT_EQ(snap.links.size(), 3u);
  EXPECT_FALSE(snap.neighbors.empty());

  const std::string json = snap.to_json();
  const MeasurementSnapshot back = MeasurementSnapshot::from_json(json);
  // Exact equality, including every double bit: %.17g round-trips IEEE
  // doubles and the schema loses nothing.
  EXPECT_EQ(back, snap);
  // And the serialization itself is byte-stable.
  EXPECT_EQ(back.to_json(), json);
}

TEST(ControlPlane, HandWrittenSnapshotNormalizesNeighborsAndThreshold) {
  // Hand-written documents may list neighbor pairs in any order; parsing
  // normalizes them to the sorted first<second invariant is_neighbor
  // relies on. The threshold round-trips even without a LIR table.
  const MeasurementSnapshot snap = MeasurementSnapshot::from_json(
      "{\"version\":1,\"links\":[],\"neighbors\":[[2,1],[1,2],[3,0]],"
      "\"lir_threshold\":0.5}");
  EXPECT_TRUE(snap.is_neighbor(1, 2));
  EXPECT_TRUE(snap.is_neighbor(2, 1));
  EXPECT_TRUE(snap.is_neighbor(0, 3));
  EXPECT_FALSE(snap.is_neighbor(0, 1));
  ASSERT_EQ(snap.neighbors.size(), 2u);  // duplicate collapsed
  EXPECT_EQ(snap.lir_threshold, 0.5);
  EXPECT_EQ(MeasurementSnapshot::from_json(snap.to_json()), snap);

  // Out-of-int-range numbers are a schema error, not UB.
  EXPECT_THROW((void)MeasurementSnapshot::from_json(
                   "{\"version\":1,\"links\":[],\"neighbors\":[[1e300,2]],"
                   "\"lir_threshold\":0.95}"),
               std::invalid_argument);
}

TEST(ControlPlane, LirSnapshotRoundTripsAndSelectsLirModel) {
  LiveRound live(103, quick_config());
  const int l = static_cast<int>(live.ctl.links().size());
  DenseMatrix lir(l, l, 1.0);
  lir(0, 1) = lir(1, 0) = 0.2;  // links 0 and 1 interfere
  live.ctl.set_lir_table(lir, 0.9);
  live.probe();

  const MeasurementSnapshot back =
      MeasurementSnapshot::from_json(live.ctl.snapshot().to_json());
  EXPECT_EQ(back, live.ctl.snapshot());
  ASSERT_FALSE(back.lir.empty());
  EXPECT_EQ(back.lir_threshold, 0.9);

  const InterferenceModel model =
      InterferenceModel::build(back, InterferenceModelKind::kLirTable);
  EXPECT_EQ(model.kind(), InterferenceModelKind::kLirTable);
  EXPECT_TRUE(model.conflicts().conflicts(0, 1));
  EXPECT_FALSE(model.conflicts().conflicts(0, 2));
}

TEST(ControlPlane, ReplayedSnapshotPlansBitIdenticalToLiveController) {
  // The acceptance criterion: record a snapshot from a live round,
  // serialize to JSON, reload, and the pure pipeline's RatePlan must be
  // bit-identical to what the live MeshController computed and applied.
  LiveRound live(107, quick_config());
  live.probe();
  const std::string json = live.ctl.snapshot().to_json();
  const RoundResult round = live.ctl.optimize_and_apply();
  ASSERT_TRUE(round.ok);

  const MeasurementSnapshot replayed = MeasurementSnapshot::from_json(json);
  const InterferenceModel model =
      InterferenceModel::build(replayed, InterferenceModelKind::kTwoHop);
  const RatePlan plan =
      plan_rates(replayed, model, live.ctl.flow_specs(), quick_config().plan());

  ASSERT_TRUE(plan.ok);
  ASSERT_EQ(plan.y.size(), round.y.size());
  for (std::size_t s = 0; s < plan.y.size(); ++s) {
    EXPECT_EQ(plan.y[s], round.y[s]) << "y[" << s << "]";
    EXPECT_EQ(plan.x[s], round.x[s]) << "x[" << s << "]";
  }
  EXPECT_EQ(plan.extreme_points, round.extreme_points);
  EXPECT_EQ(plan.optimizer_iterations, round.optimizer_iterations);
  // The live controller's own record of the plan matches too.
  EXPECT_EQ(plan, live.ctl.last_plan());
}

TEST(ControlPlane, PlanRatesIsPure) {
  LiveRound live(109, quick_config());
  live.probe();
  const MeasurementSnapshot snap = live.ctl.snapshot();
  const InterferenceModel model =
      InterferenceModel::build(snap, InterferenceModelKind::kTwoHop);
  const std::vector<FlowSpec> flows = live.ctl.flow_specs();
  const PlanConfig cfg = quick_config().plan();

  const RatePlan a = plan_rates(snap, model, flows, cfg);
  const RatePlan b = plan_rates(snap, model, flows, cfg);
  ASSERT_TRUE(a.ok);
  EXPECT_EQ(a, b);
}

TEST(ControlPlane, ApplyPlanProgramsShapersByFlowId) {
  double applied0 = -1.0, applied1 = -1.0;
  Workbench wb(113);
  build_gateway(wb);
  MeshController ctl(wb.net(), quick_config(), 113);
  ManagedFlow f0;
  f0.flow_id = wb.net().open_flow(0, 2, Protocol::kUdp, 1470);
  f0.path = {0, 1, 2};
  f0.apply_rate = [&](double x) { applied0 = x; };
  ctl.manage_flow(f0);
  ManagedFlow f1;
  f1.flow_id = wb.net().open_flow(3, 2, Protocol::kUdp, 1470);
  f1.path = {3, 2};
  f1.apply_rate = [&](double x) { applied1 = x; };
  ctl.manage_flow(f1);

  RatePlan plan;
  plan.ok = true;
  plan.shapers = {ShaperProgram{f1.flow_id, 2e6},
                  ShaperProgram{f0.flow_id, 1e6}};  // order shuffled
  ctl.apply_plan(plan);
  EXPECT_DOUBLE_EQ(applied0, 1e6);
  EXPECT_DOUBLE_EQ(applied1, 2e6);
}

TEST(ControlPlane, FleetIsBitIdenticalAcrossThreadCounts) {
  // ≥ 8 scenario variants over topology × traffic × interference-model ×
  // objective, run on 1 thread and on 4: every snapshot and plan must be
  // bit-for-bit identical.
  ControllerConfig base;
  base.probe_period_s = 0.25;
  base.probe_window = 40;

  std::vector<FleetCell> cells;
  const double cross_rss[] = {-56.0, -60.0};
  const Objective objectives[] = {Objective::kProportionalFair,
                                  Objective::kMaxThroughput,
                                  Objective::kMaxMin};
  for (const double rss : cross_rss) {
    for (const Objective obj : objectives) {
      FleetCell cell;
      cell.build_topology = [rss](Workbench& wb) {
        wb.add_nodes(4);
        Channel& ch = wb.channel();
        for (NodeId a = 0; a < 4; ++a)
          for (NodeId b = 0; b < 4; ++b)
            if (a != b) ch.set_rss_dbm(a, b, -120.0);
        ch.set_rss_symmetric_dbm(0, 1, -58.0);
        ch.set_rss_symmetric_dbm(1, 2, -58.0);
        ch.set_rss_symmetric_dbm(3, 2, rss);
        ch.set_rss_symmetric_dbm(1, 3, -70.0);
      };
      cell.flows = {FleetFlow{{0, 1, 2}}, FleetFlow{{3, 2}}};
      cell.controller = base;
      cell.controller.optimizer.objective = obj;
      cells.push_back(std::move(cell));
    }
  }
  // Variant 7: binary-LIR model claiming full independence.
  {
    FleetCell cell = cells[0];
    cell.lir = DenseMatrix(3, 3, 1.0);
    cells.push_back(std::move(cell));
  }
  // Variant 8: driven CBR traffic plus two back-to-back rounds.
  {
    FleetCell cell = cells[1];
    cell.flows[0].input_bps = 0.3e6;
    cell.flows[1].input_bps = 0.3e6;
    cell.rounds = 2;
    cell.settle_s = 1.0;
    cells.push_back(std::move(cell));
  }
  ASSERT_GE(cells.size(), 8u);

  ControllerFleet serial(1);
  ControllerFleet parallel(4);
  const auto a = serial.run(cells, /*master_seed=*/777);
  const auto b = parallel.run(cells, /*master_seed=*/777);

  ASSERT_EQ(a.size(), cells.size());
  ASSERT_EQ(b.size(), cells.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, static_cast<int>(i));
    EXPECT_EQ(a[i].seed, b[i].seed) << "cell " << i;
    EXPECT_EQ(a[i].ok, b[i].ok) << "cell " << i;
    EXPECT_TRUE(a[i].ok) << "cell " << i;
    EXPECT_EQ(a[i].snapshot, b[i].snapshot) << "cell " << i;
    EXPECT_EQ(a[i].plan, b[i].plan) << "cell " << i;
  }
  // Sanity: distinct variants genuinely produce distinct plans.
  EXPECT_NE(a[0].plan.y, a[1].plan.y);
}

TEST(ControlPlane, SchemaFixtureStillParsesAndPlans) {
  // Golden schema fixture: a snapshot recorded by this pipeline and
  // committed to the repo (CI uploads it as an artifact). If the schema
  // drifts incompatibly, this test is the tripwire.
  std::ifstream in(std::string(MESHOPT_SOURCE_DIR) +
                   "/tests/data/snapshot_fixture.json");
  ASSERT_TRUE(in.good()) << "fixture missing";
  std::stringstream buf;
  buf << in.rdbuf();

  const MeasurementSnapshot snap =
      MeasurementSnapshot::from_json(buf.str());
  ASSERT_EQ(snap.links.size(), 3u);
  EXPECT_EQ(snap.links[0].src, 0);
  EXPECT_EQ(snap.links[0].dst, 1);
  EXPECT_GT(snap.links[0].estimate.capacity_bps, 0.0);
  EXPECT_TRUE(snap.is_neighbor(0, 1));
  ASSERT_FALSE(snap.lir.empty());
  EXPECT_EQ(snap.lir.rows(), 3);

  // Round-trip stability of the committed document's parsed form.
  EXPECT_EQ(MeasurementSnapshot::from_json(snap.to_json()), snap);

  // A full offline replay down the pipeline works from the fixture alone.
  const InterferenceModel model =
      InterferenceModel::build(snap, InterferenceModelKind::kTwoHop);
  std::vector<FlowSpec> flows(2);
  flows[0].flow_id = 0;
  flows[0].path = {0, 1, 2};
  flows[1].flow_id = 1;
  flows[1].path = {3, 2};
  const RatePlan plan = plan_rates(snap, model, flows, PlanConfig{});
  ASSERT_TRUE(plan.ok);
  EXPECT_GT(plan.y[0], 0.0);
  EXPECT_GT(plan.y[1], 0.0);
}

}  // namespace
}  // namespace meshopt
