// Plan-tier differential harness (ARCHITECTURE.md, "Plan tiers").
//
// Pins the tiered determinism contract:
//   * kExact — the bit-identical reference path (and the pre-tier default:
//     a PlanConfig that never mentions tiers plans exactly),
//   * kFast — column generation; per-round objective within a 1e-6
//     relative gap of kExact across a topology × objective × interference
//     × churn grid, same active-flow support on strictly concave
//     objectives, and bit-identical to itself across repeated runs and
//     fleet thread counts for a fixed ReplayOptions.
//
// The golden fixture (tests/data/plan_tiers_golden.json) freezes fast-tier
// objective values at 17 significant digits; compared at 1e-9 relative
// tolerance to absorb cross-arch -march=native drift. Regenerate with
//   MESHOPT_REGEN_GOLDEN=1 ./test_plan_tiers

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/controller.h"
#include "core/interference.h"
#include "core/planner.h"
#include "core/rate_plan.h"
#include "core/snapshot.h"
#include "probe/live_source.h"
#include "scenario/topologies.h"
#include "scenario/workbench.h"
#include "sweep/controller_fleet.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/trace_codec.h"

namespace meshopt {
namespace {

// ---------------------------------------------------------------- fixtures

/// A small hand-built two-hop snapshot: 3 links of a chain + cross link.
MeasurementSnapshot chain_snapshot() {
  MeasurementSnapshot snap;
  const NodeId hops[][2] = {{0, 1}, {1, 2}, {3, 2}};
  for (const auto& h : hops) {
    SnapshotLink l;
    l.src = h[0];
    l.dst = h[1];
    l.rate = Rate::kR11Mbps;
    l.estimate.p_link = 0.02;
    l.estimate.capacity_bps = 4.2e6;
    snap.links.push_back(l);
  }
  snap.neighbors = {{0, 1}, {1, 2}, {1, 3}, {2, 3}};
  return snap;
}

/// A randomized chain-of-links LIR snapshot (non-trivial conflict graph).
MeasurementSnapshot lir_snapshot(int links, std::uint64_t seed) {
  MeasurementSnapshot snap;
  RngStream rng(seed, "plan-tiers-lir");
  for (int i = 0; i < links; ++i) {
    SnapshotLink l;
    l.src = i;
    l.dst = i + 1;
    l.rate = Rate::kR11Mbps;
    l.estimate.capacity_bps = rng.uniform(0.5e6, 5e6);
    l.estimate.p_link = rng.uniform(0.0, 0.2);
    snap.links.push_back(l);
  }
  snap.lir.resize(links, links, 1.0);
  for (int i = 0; i < links; ++i)
    for (int j = i + 1; j < links; ++j)
      if (rng.bernoulli(0.5)) snap.lir(i, j) = snap.lir(j, i) = 0.4;
  snap.lir_threshold = 0.95;
  return snap;
}

std::vector<FlowSpec> chain_flows() {
  std::vector<FlowSpec> flows(2);
  flows[0].flow_id = 0;
  flows[0].path = {0, 1, 2};
  flows[1].flow_id = 1;
  flows[1].path = {3, 2};
  return flows;
}

/// Flows over a `links`-link chain: three spans of different lengths.
std::vector<FlowSpec> span_flows(int links) {
  std::vector<FlowSpec> flows(3);
  flows[0].flow_id = 0;
  for (NodeId n = 0; n <= std::min(5, links); ++n) flows[0].path.push_back(n);
  flows[1].flow_id = 1;
  for (NodeId n = 3; n <= std::min(10, links); ++n) flows[1].path.push_back(n);
  flows[2].flow_id = 2;
  for (NodeId n = std::max(0, links - 4); n <= links; ++n)
    flows[2].path.push_back(n);
  return flows;
}

struct TierCase {
  std::string name;
  MeasurementSnapshot snap;
  InterferenceModelKind kind = InterferenceModelKind::kTwoHop;
  std::vector<FlowSpec> flows;
};

std::vector<TierCase> grid_cases() {
  std::vector<TierCase> cases;
  cases.push_back({"chain", chain_snapshot(), InterferenceModelKind::kTwoHop,
                   chain_flows()});
  cases.push_back({"lir16", lir_snapshot(16, 101),
                   InterferenceModelKind::kLirTable, span_flows(16)});
  cases.push_back({"lir24", lir_snapshot(24, 103),
                   InterferenceModelKind::kLirTable, span_flows(24)});
  return cases;
}

struct ObjectiveCase {
  std::string name;
  OptimizerConfig cfg;
};

std::vector<ObjectiveCase> objective_cases() {
  std::vector<ObjectiveCase> cases(4);
  cases[0].name = "maxthru";
  cases[0].cfg.objective = Objective::kMaxThroughput;
  cases[1].name = "pf";
  cases[1].cfg.objective = Objective::kProportionalFair;
  cases[2].name = "maxmin";
  cases[2].cfg.objective = Objective::kMaxMin;
  cases[3].name = "alpha2";
  cases[3].cfg.objective = Objective::kAlphaFair;
  cases[3].cfg.alpha = 2.0;
  return cases;
}

/// The set of flows carrying non-negligible rate.
std::vector<int> active_support(const std::vector<double>& y) {
  double mx = 1.0;
  for (double v : y) mx = std::max(mx, v);
  std::vector<int> s;
  for (std::size_t i = 0; i < y.size(); ++i)
    if (y[i] > 1e-6 * mx) s.push_back(static_cast<int>(i));
  return s;
}

bool strictly_concave(Objective obj) {
  return obj == Objective::kProportionalFair || obj == Objective::kAlphaFair ||
         obj == Objective::kMaxMin;
}

// ------------------------------------------------------- differential grid

TEST(PlanTiers, DifferentialGridGapWithinPinnedBound) {
  // topology × objective × churn-phase grid: the fast tier must track the
  // exact tier's objective within the pinned 1e-6 relative gap on every
  // round, with the working set staying below the full extreme-point count
  // whenever the region is non-trivial.
  for (TierCase& tc : grid_cases()) {
    for (const ObjectiveCase& oc : objective_cases()) {
      Planner exact_planner(4);
      Planner fast_planner(4);
      PlanConfig exact_cfg;
      exact_cfg.optimizer = oc.cfg;
      PlanConfig fast_cfg = exact_cfg;
      fast_cfg.tier = PlanTier::kFast;

      MeasurementSnapshot snap = tc.snap;
      RngStream drift(7, "tier-grid-" + tc.name + "-" + oc.name);
      for (int round = 0; round < 4; ++round) {
        if (round > 0)
          for (SnapshotLink& l : snap.links)
            l.estimate.capacity_bps *= drift.uniform(0.85, 1.15);

        const RatePlan exact =
            exact_planner.plan(snap, tc.kind, tc.flows, exact_cfg);
        const RatePlan fast =
            fast_planner.plan(snap, tc.kind, tc.flows, fast_cfg);
        const std::string at =
            tc.name + "/" + oc.name + "/round " + std::to_string(round);
        ASSERT_TRUE(exact.ok) << at;
        ASSERT_TRUE(fast.ok) << at;

        // Tier metadata.
        EXPECT_EQ(exact.tier, PlanTier::kExact) << at;
        EXPECT_EQ(fast.tier, PlanTier::kFast) << at;
        EXPECT_EQ(exact.columns_generated, 0) << at;
        EXPECT_GT(fast.columns_generated, 0) << at;
        EXPECT_EQ(fast.columns_generated, fast.extreme_points) << at;

        // The pinned gap.
        const double tol =
            1e-6 * std::max(1.0, std::abs(exact.objective_value));
        EXPECT_NEAR(fast.objective_value, exact.objective_value, tol) << at;

        // Sublinear working set: never more columns than the full K.
        EXPECT_LE(fast.extreme_points, exact.extreme_points) << at;

        // Identical active-flow support on strictly concave objectives
        // (max-throughput has alternate optima; support may differ).
        if (strictly_concave(oc.cfg.objective))
          EXPECT_EQ(active_support(fast.y), active_support(exact.y)) << at;

        // Per-flow rates track within the same relative scale.
        ASSERT_EQ(fast.y.size(), exact.y.size()) << at;
        if (strictly_concave(oc.cfg.objective)) {
          double scale = 1.0;
          for (double v : exact.y) scale = std::max(scale, std::abs(v));
          for (std::size_t s = 0; s < exact.y.size(); ++s)
            EXPECT_NEAR(fast.y[s], exact.y[s], 1e-4 * scale)
                << at << " flow " << s;
        }
      }
      // Warm starts actually engaged across the drift rounds (rounds 2+
      // reuse the planner-entry optimizer's columns and basis).
      EXPECT_GE(fast_planner.stats().hits, 3u) << tc.name << "/" << oc.name;
    }
  }
}

TEST(PlanTiers, ExactTierIsTheDefaultAndBitIdenticalToDirectPlanRates) {
  // A PlanConfig that never mentions tiers must plan exactly (the pre-tier
  // path), and Planner::plan on the exact tier must stay bit-identical to
  // a direct uncached plan_rates walk.
  MeasurementSnapshot snap = lir_snapshot(16, 101);
  const std::vector<FlowSpec> flows = span_flows(16);
  PlanConfig cfg;
  cfg.optimizer.objective = Objective::kProportionalFair;
  ASSERT_EQ(cfg.tier, PlanTier::kExact);

  Planner planner(4);
  RngStream drift(11, "tier-exact");
  for (int round = 0; round < 3; ++round) {
    for (SnapshotLink& l : snap.links)
      l.estimate.capacity_bps *= drift.uniform(0.9, 1.1);
    const InterferenceModel reference =
        InterferenceModel::build(snap, InterferenceModelKind::kLirTable);
    const RatePlan direct = plan_rates(snap, reference, flows, cfg);
    const RatePlan via_planner =
        planner.plan(snap, InterferenceModelKind::kLirTable, flows, cfg);
    EXPECT_EQ(via_planner, direct) << "round " << round;
    EXPECT_EQ(direct.tier, PlanTier::kExact);
    EXPECT_EQ(direct.pricing_rounds, 0);
  }
}

TEST(PlanTiers, FastTierBitIdenticalAcrossRepeatedRuns) {
  // Determinism within the tier: two fresh planners fed the same snapshot
  // sequence produce bit-identical plans (operator== covers y, x, shapers
  // and all tier metadata).
  auto run_once = []() {
    Planner planner(4);
    PlanConfig cfg;
    cfg.optimizer.objective = Objective::kProportionalFair;
    cfg.tier = PlanTier::kFast;
    MeasurementSnapshot snap = lir_snapshot(20, 107);
    const std::vector<FlowSpec> flows = span_flows(20);
    RngStream drift(13, "tier-repeat");
    std::vector<RatePlan> plans;
    for (int round = 0; round < 5; ++round) {
      for (SnapshotLink& l : snap.links)
        l.estimate.capacity_bps *= drift.uniform(0.9, 1.1);
      plans.push_back(
          planner.plan(snap, InterferenceModelKind::kLirTable, flows, cfg));
    }
    return plans;
  };
  const std::vector<RatePlan> a = run_once();
  const std::vector<RatePlan> b = run_once();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t r = 0; r < a.size(); ++r) {
    EXPECT_TRUE(a[r].ok) << "round " << r;
    EXPECT_EQ(a[r], b[r]) << "round " << r;
  }
}

// --------------------------------------------------------- fleet replay

ControllerConfig live_config() {
  ControllerConfig cfg;
  cfg.probe_period_s = 0.25;
  cfg.probe_window = 40;
  cfg.optimizer.objective = Objective::kProportionalFair;
  return cfg;
}

std::vector<MeasurementSnapshot> record_gateway_trace(int rounds,
                                                      std::uint64_t seed) {
  Workbench wb(seed);
  build_gateway_chain(wb);
  MeshController ctl(wb.net(), live_config(), seed);
  ManagedFlow far;
  far.flow_id = wb.net().open_flow(0, 2, Protocol::kUdp, 1470);
  far.path = {0, 1, 2};
  ctl.manage_flow(far);
  ManagedFlow near;
  near.flow_id = wb.net().open_flow(3, 2, Protocol::kUdp, 1470);
  near.path = {3, 2};
  ctl.manage_flow(near);
  std::vector<MeasurementSnapshot> trace;
  LiveSource live(wb, ctl, rounds);
  MeasurementSnapshot snap;
  while (live.next(snap)) trace.push_back(snap);
  return trace;
}

std::vector<ReplayCell> gateway_cells(PlanTier tier) {
  std::vector<ReplayCell> cells;
  for (const Objective obj :
       {Objective::kProportionalFair, Objective::kMaxThroughput}) {
    ReplayCell cell;
    cell.flows.resize(2);
    cell.flows[0].flow_id = 0;
    cell.flows[0].path = {0, 1, 2};
    cell.flows[1].flow_id = 1;
    cell.flows[1].path = {3, 2};
    cell.plan.optimizer.objective = obj;
    cell.plan.tier = tier;
    cells.push_back(std::move(cell));
  }
  return cells;
}

TEST(PlanTiers, FleetReplayFastTierThreadCountInvariant) {
  // Fast-tier fleet determinism: for a FIXED ReplayOptions the replayed
  // plans are bit-identical on 1 thread and on 4, and across repeated
  // runs — segment_rounds is part of the determinism key, so each opts
  // value is only compared against itself.
  const std::vector<MeasurementSnapshot> trace = record_gateway_trace(6, 401);
  ASSERT_EQ(trace.size(), 6u);
  const std::vector<ReplayCell> cells = gateway_cells(PlanTier::kFast);

  ControllerFleet serial(1);
  ControllerFleet parallel(4);
  for (const int seg : {0, 3}) {
    ReplayOptions opts;
    opts.segment_rounds = seg;
    const auto a = serial.replay(cells, trace, opts);
    const auto b = parallel.replay(cells, trace, opts);
    const auto c = parallel.replay(cells, trace, opts);
    ASSERT_EQ(a.size(), cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      EXPECT_TRUE(a[i].ok) << "seg " << seg << " cell " << i;
      EXPECT_EQ(a[i].plans, b[i].plans) << "seg " << seg << " cell " << i;
      EXPECT_EQ(b[i].plans, c[i].plans) << "seg " << seg << " cell " << i;
      for (const RatePlan& p : a[i].plans)
        EXPECT_EQ(p.tier, PlanTier::kFast);
    }
  }
}

TEST(PlanTiers, FleetReplayFastTracksExactWithinGap) {
  // The replay-level differential: every round of every fast cell stays
  // within the pinned gap of the exact cell it shadows.
  const std::vector<MeasurementSnapshot> trace = record_gateway_trace(6, 409);
  ASSERT_EQ(trace.size(), 6u);

  ControllerFleet fleet(2);
  const auto exact = fleet.replay(gateway_cells(PlanTier::kExact), trace);
  const auto fast = fleet.replay(gateway_cells(PlanTier::kFast), trace);
  ASSERT_EQ(exact.size(), fast.size());
  for (std::size_t c = 0; c < exact.size(); ++c) {
    ASSERT_EQ(exact[c].plans.size(), fast[c].plans.size());
    for (std::size_t r = 0; r < exact[c].plans.size(); ++r) {
      const RatePlan& e = exact[c].plans[r];
      const RatePlan& f = fast[c].plans[r];
      ASSERT_EQ(e.ok, f.ok) << "cell " << c << " round " << r;
      if (!e.ok) continue;
      const double tol = 1e-6 * std::max(1.0, std::abs(e.objective_value));
      EXPECT_NEAR(f.objective_value, e.objective_value, tol)
          << "cell " << c << " round " << r;
      EXPECT_LE(f.extreme_points, e.extreme_points);
    }
  }
}

// --------------------------------------------------------- golden fixture

std::string golden_path() {
  return std::string(MESHOPT_SOURCE_DIR) + "/tests/data/plan_tiers_golden.json";
}

struct GoldenEntry {
  std::string name;
  double objective = 0.0;
};

/// The frozen scenario: two LIR topologies × two objectives × 3 warm drift
/// rounds, fast tier throughout. Purely synthetic (no simulation), so the
/// values depend only on the optimizer arithmetic the fixture pins.
std::vector<GoldenEntry> compute_golden_entries() {
  std::vector<GoldenEntry> out;
  for (const int links : {16, 24}) {
    for (const ObjectiveCase& oc : objective_cases()) {
      if (oc.name != "pf" && oc.name != "maxthru") continue;
      Planner planner(4);
      PlanConfig cfg;
      cfg.optimizer = oc.cfg;
      cfg.tier = PlanTier::kFast;
      MeasurementSnapshot snap =
          lir_snapshot(links, 61 + static_cast<std::uint64_t>(links));
      const std::vector<FlowSpec> flows = span_flows(links);
      RngStream drift(17, "tier-golden");
      for (int round = 0; round < 3; ++round) {
        for (SnapshotLink& l : snap.links)
          l.estimate.capacity_bps *= drift.uniform(0.9, 1.1);
        const RatePlan plan =
            planner.plan(snap, InterferenceModelKind::kLirTable, flows, cfg);
        GoldenEntry e;
        e.name = "lir" + std::to_string(links) + "-" + oc.name + "-r" +
                 std::to_string(round);
        e.objective = plan.ok ? plan.objective_value : 0.0;
        out.push_back(std::move(e));
      }
    }
  }
  // Plus the committed recorded gateway trace (tests/data/
  // trace_fixture.bin) replayed through the fast tier — real measured
  // snapshots, so tier drift is caught even if the synthetic generator
  // and the exact tier both move.
  const std::vector<MeasurementSnapshot> trace = read_trace(
      std::string(MESHOPT_SOURCE_DIR) + "/tests/data/trace_fixture.bin");
  ControllerFleet fleet(1);
  std::vector<ReplayCell> cells = gateway_cells(PlanTier::kFast);
  const std::vector<ReplayResult> results = fleet.replay(cells, trace);
  const char* cell_names[] = {"pf", "maxthru"};
  for (std::size_t c = 0; c < results.size(); ++c) {
    for (std::size_t r = 0; r < results[c].plans.size(); ++r) {
      GoldenEntry e;
      e.name = std::string("trace-") + cell_names[c] + "-r" +
               std::to_string(r);
      e.objective =
          results[c].plans[r].ok ? results[c].plans[r].objective_value : 0.0;
      out.push_back(std::move(e));
    }
  }
  return out;
}

void write_golden(const std::vector<GoldenEntry>& entries) {
  std::string doc = "{\n  \"cases\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    doc += "    {\"name\": ";
    json_append_string(doc, entries[i].name);
    doc += ", \"objective\": ";
    json_append_double(doc, entries[i].objective);
    doc += i + 1 < entries.size() ? "},\n" : "}\n";
  }
  doc += "  ]\n}\n";
  std::ofstream out(golden_path());
  ASSERT_TRUE(out.is_open()) << golden_path();
  out << doc;
}

TEST(PlanTiers, GoldenFastTierObjectives) {
  const std::vector<GoldenEntry> computed = compute_golden_entries();
  ASSERT_EQ(computed.size(), 20u);  // 12 synthetic + 8 recorded-trace
  for (const GoldenEntry& e : computed)
    EXPECT_NE(e.objective, 0.0) << e.name << ": plan failed";

  if (std::getenv("MESHOPT_REGEN_GOLDEN") != nullptr) {
    write_golden(computed);
    GTEST_SKIP() << "regenerated " << golden_path();
  }

  std::ifstream in(golden_path());
  ASSERT_TRUE(in.is_open())
      << golden_path()
      << " missing; regenerate with MESHOPT_REGEN_GOLDEN=1 ./test_plan_tiers";
  std::stringstream buf;
  buf << in.rdbuf();
  const JsonValue doc = JsonValue::parse(buf.str());
  const std::vector<JsonValue>& cases = doc.at("cases").items();
  ASSERT_EQ(cases.size(), computed.size());
  for (std::size_t i = 0; i < cases.size(); ++i) {
    EXPECT_EQ(cases[i].at("name").as_string(), computed[i].name);
    const double want = cases[i].at("objective").as_number();
    // 1e-9 relative: absorbs cross-arch vectorization drift, catches any
    // real change to the fast tier's arithmetic.
    EXPECT_NEAR(computed[i].objective, want, 1e-9 * std::abs(want))
        << computed[i].name;
  }
}

}  // namespace
}  // namespace meshopt
