// Channel-loss estimator unit tests on synthetic loss patterns: the
// estimator must report p for uniform losses (case 1) and filter out
// bursty collision losses to recover the channel-only rate (case 2).

#include "estimation/loss_estimator.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace meshopt {
namespace {

std::vector<std::uint8_t> uniform_losses(int s, double p, std::uint64_t seed) {
  RngStream rng(seed, "uniform");
  std::vector<std::uint8_t> v(static_cast<std::size_t>(s), 0);
  for (auto& b : v) b = rng.bernoulli(p) ? 1 : 0;
  return v;
}

/// Uniform channel losses plus bursts of collision losses.
std::vector<std::uint8_t> bursty_losses(int s, double p_ch, int bursts,
                                        int burst_len, std::uint64_t seed) {
  auto v = uniform_losses(s, p_ch, seed);
  RngStream rng(seed, "bursts");
  for (int b = 0; b < bursts; ++b) {
    const int start = rng.uniform_int(0, s - burst_len - 1);
    for (int i = 0; i < burst_len; ++i) v[std::size_t(start + i)] = 1;
  }
  return v;
}

TEST(LossEstimator, EmptyPattern) {
  const auto est = estimate_channel_loss({});
  EXPECT_EQ(est.p, 0.0);
  EXPECT_EQ(est.p_ch, 0.0);
}

TEST(LossEstimator, NoLosses) {
  std::vector<std::uint8_t> v(500, 0);
  const auto est = estimate_channel_loss(v);
  EXPECT_EQ(est.p, 0.0);
  EXPECT_EQ(est.p_ch, 0.0);
  EXPECT_TRUE(est.median_case);
}

TEST(LossEstimator, AllLost) {
  std::vector<std::uint8_t> v(500, 1);
  const auto est = estimate_channel_loss(v);
  EXPECT_EQ(est.p, 1.0);
  EXPECT_NEAR(est.p_ch, 1.0, 1e-12);
}

TEST(LossEstimator, UniformLossesTriggerMedianCase) {
  const auto v = uniform_losses(1280, 0.2, 42);
  const auto est = estimate_channel_loss(v);
  EXPECT_TRUE(est.median_case);
  EXPECT_NEAR(est.p_ch, est.p, 1e-12);
  EXPECT_NEAR(est.p_ch, 0.2, 0.05);
}

TEST(LossEstimator, BurstyCollisionsFiltered) {
  // 5% channel losses plus heavy bursts pushing measured p much higher.
  const auto v = bursty_losses(1280, 0.05, 12, 40, 7);
  const auto est = estimate_channel_loss(v);
  EXPECT_GT(est.p, 0.30);  // bursts inflate the measured rate
  EXPECT_FALSE(est.median_case);
  EXPECT_NEAR(est.p_ch, 0.05, 0.04);
}

TEST(LossEstimator, PwEndsAtPAndStaysInRange) {
  const auto v = bursty_losses(640, 0.1, 6, 30, 3);
  const auto est = estimate_channel_loss(v);
  ASSERT_FALSE(est.p_w.empty());
  // p^(S) equals the measured p by construction (single full window).
  EXPECT_NEAR(est.p_w.back(), est.p, 1e-12);
  for (double pw : est.p_w) {
    EXPECT_GE(pw, 0.0);
    EXPECT_LE(pw, 1.0);
  }
  // The smallest window estimate lower-bounds p (it can always slide to
  // the cleanest segment).
  EXPECT_LE(est.p_w.front(), est.p + 1e-12);
}

TEST(LossEstimator, WStarWithinRange) {
  const auto v = bursty_losses(800, 0.08, 8, 25, 11);
  const auto est = estimate_channel_loss(v, 10);
  EXPECT_GE(est.w_star, 10);
  EXPECT_LE(est.w_star, 800);
}

// Property sweep: across channel rates and burst intensities, the estimate
// must stay close to the planted channel rate (this is Fig. 10's claim:
// RMSE ~0.05 over many links).
class EstimatorGrid
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(EstimatorGrid, RecoversPlantedChannelRate) {
  const auto [p_ch, bursts] = GetParam();
  double err_acc = 0.0;
  const int runs = 8;
  for (int r = 0; r < runs; ++r) {
    const auto v =
        bursty_losses(1280, p_ch, bursts, 35, 100 + static_cast<std::uint64_t>(r));
    const auto est = estimate_channel_loss(v);
    err_acc += (est.p_ch - p_ch) * (est.p_ch - p_ch);
  }
  const double rmse = std::sqrt(err_acc / runs);
  EXPECT_LT(rmse, 0.08) << "p_ch=" << p_ch << " bursts=" << bursts;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EstimatorGrid,
    ::testing::Combine(::testing::Values(0.0, 0.05, 0.1, 0.2, 0.3),
                       ::testing::Values(0, 5, 12)));

TEST(LossEstimator, CombineDataAckLoss) {
  EXPECT_DOUBLE_EQ(combine_data_ack_loss(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(combine_data_ack_loss(1.0, 0.0), 1.0);
  EXPECT_NEAR(combine_data_ack_loss(0.1, 0.2), 1.0 - 0.9 * 0.8, 1e-12);
  // Clamping.
  EXPECT_DOUBLE_EQ(combine_data_ack_loss(-0.5, 2.0), 1.0);
}

TEST(LossEstimator, ShortWindowStillSane) {
  // S = 200 (the controller's operating point).
  const auto v = bursty_losses(200, 0.1, 3, 20, 21);
  const auto est = estimate_channel_loss(v);
  EXPECT_GE(est.p_ch, 0.0);
  EXPECT_LE(est.p_ch, est.p + 1e-12);
  EXPECT_NEAR(est.p_ch, 0.1, 0.09);
}

}  // namespace
}  // namespace meshopt
