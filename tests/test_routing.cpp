#include "routing/ett.h"

#include <gtest/gtest.h>

#include <cmath>

namespace meshopt {
namespace {

LinkState mk(NodeId a, NodeId b, Rate r = Rate::kR11Mbps, double pf = 0.0,
             double pr = 0.0) {
  LinkState l;
  l.src = a;
  l.dst = b;
  l.rate = r;
  l.p_fwd = pf;
  l.p_rev = pr;
  return l;
}

TEST(Ett, CleanLinkIsTransmissionTime) {
  const LinkState l = mk(0, 1, Rate::kR1Mbps);
  EXPECT_NEAR(ett_seconds(l, 1500), 1500.0 * 8.0 / 1e6, 1e-12);
}

TEST(Ett, LossInflatesMetric) {
  const LinkState clean = mk(0, 1, Rate::kR11Mbps);
  const LinkState lossy = mk(0, 1, Rate::kR11Mbps, 0.5, 0.0);
  EXPECT_NEAR(ett_seconds(lossy) / ett_seconds(clean), 2.0, 1e-9);
  const LinkState both = mk(0, 1, Rate::kR11Mbps, 0.5, 0.5);
  EXPECT_NEAR(ett_seconds(both) / ett_seconds(clean), 4.0, 1e-9);
}

TEST(Ett, DeadLinkInfinite) {
  EXPECT_TRUE(std::isinf(ett_seconds(mk(0, 1, Rate::kR1Mbps, 1.0, 0.0))));
}

TEST(TopologyDb, UpdateOverwrites) {
  TopologyDb db;
  db.update_link(mk(0, 1, Rate::kR1Mbps, 0.1));
  db.update_link(mk(0, 1, Rate::kR1Mbps, 0.4));
  ASSERT_TRUE(db.link(0, 1).has_value());
  EXPECT_NEAR(db.link(0, 1)->p_fwd, 0.4, 1e-12);
  EXPECT_EQ(db.links().size(), 1u);
}

TEST(TopologyDb, ShortestPathPrefersFastCleanRoute) {
  TopologyDb db;
  // Direct 1 Mb/s lossy link vs 2-hop clean 11 Mb/s path.
  db.update_link(mk(0, 2, Rate::kR1Mbps, 0.3, 0.0));
  db.update_link(mk(0, 1, Rate::kR11Mbps));
  db.update_link(mk(1, 2, Rate::kR11Mbps));
  const auto path = db.shortest_path(0, 2);
  EXPECT_EQ(path, (std::vector<NodeId>{0, 1, 2}));
}

TEST(TopologyDb, DirectWinsWhenCleanAndFast) {
  TopologyDb db;
  db.update_link(mk(0, 2, Rate::kR11Mbps));
  db.update_link(mk(0, 1, Rate::kR11Mbps));
  db.update_link(mk(1, 2, Rate::kR11Mbps));
  EXPECT_EQ(db.shortest_path(0, 2), (std::vector<NodeId>{0, 2}));
}

TEST(TopologyDb, UnreachableIsEmpty) {
  TopologyDb db;
  db.update_link(mk(0, 1));
  EXPECT_TRUE(db.shortest_path(0, 5).empty());
}

TEST(TopologyDb, AvoidsDeadLinks) {
  TopologyDb db;
  db.update_link(mk(0, 2, Rate::kR11Mbps, 1.0, 0.0));  // dead
  db.update_link(mk(0, 1, Rate::kR1Mbps));
  db.update_link(mk(1, 2, Rate::kR1Mbps));
  EXPECT_EQ(db.shortest_path(0, 2), (std::vector<NodeId>{0, 1, 2}));
}

TEST(TopologyDb, PathEttSumsHops) {
  TopologyDb db;
  db.update_link(mk(0, 1, Rate::kR1Mbps));
  db.update_link(mk(1, 2, Rate::kR1Mbps));
  const double one_hop = ett_seconds(mk(0, 1, Rate::kR1Mbps));
  EXPECT_NEAR(db.path_ett({0, 1, 2}), 2.0 * one_hop, 1e-12);
  EXPECT_TRUE(std::isinf(db.path_ett({0, 2})));
}

TEST(RoutingMatrix, MarksTraversedLinks) {
  const std::vector<LinkState> links = {mk(0, 1), mk(1, 2), mk(2, 3),
                                        mk(1, 3)};
  const std::vector<std::vector<NodeId>> paths = {
      {0, 1, 2},  // flow 0
      {1, 3},     // flow 1
  };
  const auto r = build_routing_matrix(links, paths);
  ASSERT_EQ(r.size(), 4u);
  EXPECT_EQ(r[0][0], 1.0);  // 0->1 used by flow 0
  EXPECT_EQ(r[1][0], 1.0);  // 1->2 used by flow 0
  EXPECT_EQ(r[2][0], 0.0);
  EXPECT_EQ(r[3][0], 0.0);
  EXPECT_EQ(r[3][1], 1.0);  // 1->3 used by flow 1
  EXPECT_EQ(r[0][1], 0.0);
}

TEST(PathLoss, ComposesForwardLosses) {
  TopologyDb db;
  db.update_link(mk(0, 1, Rate::kR1Mbps, 0.1));
  db.update_link(mk(1, 2, Rate::kR1Mbps, 0.2));
  EXPECT_NEAR(path_loss(db, {0, 1, 2}), 1.0 - 0.9 * 0.8, 1e-12);
  // Missing hop counts as total loss.
  EXPECT_NEAR(path_loss(db, {0, 2}), 1.0, 1e-12);
}

}  // namespace
}  // namespace meshopt
