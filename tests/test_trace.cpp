// Trace & replay subsystem tests: binary/JSON/in-memory codec exactness,
// record-then-replay plan bit-identity against the live controller, fleet
// replay determinism across thread counts (with zero Simulator
// construction), probe-window batch-scheduling timing identity, and the
// codec's truncation/corruption error paths.

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/controller.h"
#include "core/snapshot_source.h"
#include "probe/live_source.h"
#include "probe/probe_system.h"
#include "scenario/topologies.h"
#include "scenario/workbench.h"
#include "sim/simulator.h"
#include "sweep/controller_fleet.h"
#include "util/trace_codec.h"

namespace meshopt {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

/// Chain topology 0-1-2 plus a 1-hop cross flow 3->2 — the canonical
/// gateway scenario, shared via scenario/topologies.h.
void build_gateway(Workbench& wb) { build_gateway_chain(wb); }

ControllerConfig quick_config() {
  ControllerConfig cfg;
  cfg.probe_period_s = 0.25;
  cfg.probe_window = 40;
  cfg.optimizer.objective = Objective::kProportionalFair;
  return cfg;
}

void add_gateway_flows(Workbench& wb, MeshController& ctl) {
  ManagedFlow two_hop;
  two_hop.flow_id = wb.net().open_flow(0, 2, Protocol::kUdp, 1470);
  two_hop.path = {0, 1, 2};
  ctl.manage_flow(two_hop);
  ManagedFlow one_hop;
  one_hop.flow_id = wb.net().open_flow(3, 2, Protocol::kUdp, 1470);
  one_hop.path = {3, 2};
  ctl.manage_flow(one_hop);
}

/// A synthetic trace with doubles chosen to catch any non-exact path:
/// non-terminating binaries, extreme magnitudes, and a subnormal.
std::vector<MeasurementSnapshot> synthetic_trace() {
  std::vector<MeasurementSnapshot> rounds;
  for (int r = 0; r < 3; ++r) {
    MeasurementSnapshot snap;
    for (int l = 0; l < 2 + r; ++l) {
      SnapshotLink link;
      link.src = l;
      link.dst = l + 1;
      link.rate = l % 2 == 0 ? Rate::kR11Mbps : Rate::kR1Mbps;
      link.retry_limit = 7 - r;
      link.estimate.p_data = 0.1 + r;
      link.estimate.p_ack = 1.0 / 3.0;
      link.estimate.p_link = 6.626070150e-34;
      link.estimate.capacity_bps = 5.5e6 + 0.123456789012345 * l;
      snap.links.push_back(link);
    }
    snap.neighbors = {{0, 1}, {1, 2}};
    snap.lir_threshold = 0.95 - 1e-17 * r;
    if (r == 2) {
      snap.lir.resize(4, 4, 1.0);
      snap.lir(0, 1) = 5e-324;  // smallest subnormal double
      snap.lir(1, 0) = 0.30000000000000004;
    }
    rounds.push_back(std::move(snap));
  }
  return rounds;
}

TEST(TraceCodec, BinaryJsonAndFileRoundTripsAreExact) {
  const std::vector<MeasurementSnapshot> rounds = synthetic_trace();

  // In-memory binary round trip: every field, every double bit.
  const std::string bytes = encode_trace(rounds);
  const std::vector<MeasurementSnapshot> decoded = decode_trace(bytes);
  ASSERT_EQ(decoded.size(), rounds.size());
  for (std::size_t i = 0; i < rounds.size(); ++i)
    EXPECT_EQ(decoded[i], rounds[i]) << "round " << i;
  // Re-encoding is byte-stable.
  EXPECT_EQ(encode_trace(decoded), bytes);

  // File round trip through TraceWriter/TraceReader.
  const std::string path = temp_path("roundtrip.trace");
  write_trace(path, rounds);
  EXPECT_EQ(read_trace(path), rounds);

  // Streaming reader sees the same records one by one.
  TraceReader reader(path);
  MeasurementSnapshot snap;
  std::size_t n = 0;
  while (reader.next(snap)) EXPECT_EQ(snap, rounds[n++]);
  EXPECT_EQ(n, rounds.size());
  EXPECT_EQ(reader.rounds_read(), static_cast<int>(rounds.size()));

  // JSON interop: binary -> JSON -> in-memory -> binary, still exact.
  const std::string json = trace_to_json(decoded);
  const std::vector<MeasurementSnapshot> via_json = trace_from_json(json);
  EXPECT_EQ(via_json, rounds);
  EXPECT_EQ(encode_trace(via_json), bytes);

  // TraceSource streams the rounds in order and reports remaining().
  TraceSource source(rounds);
  EXPECT_EQ(source.remaining(), static_cast<int>(rounds.size()));
  n = 0;
  while (source.next(snap)) EXPECT_EQ(snap, rounds[n++]);
  EXPECT_EQ(source.remaining(), 0);
  source.rewind();
  ASSERT_TRUE(source.next(snap));
  EXPECT_EQ(snap, rounds[0]);
}

TEST(TraceCodec, BinaryDecoderNormalizesNeighborPairs) {
  // External tooling may write neighbor pairs in any order; the binary
  // decoder normalizes to the sorted first<second invariant is_neighbor's
  // binary search relies on, exactly like the JSON decoder.
  MeasurementSnapshot snap;
  snap.neighbors = {{2, 1}, {1, 2}, {3, 0}};  // reversed + duplicate
  const std::vector<MeasurementSnapshot> decoded =
      decode_trace(encode_trace({snap}));
  ASSERT_EQ(decoded.size(), 1u);
  ASSERT_EQ(decoded[0].neighbors.size(), 2u);
  EXPECT_TRUE(decoded[0].is_neighbor(1, 2));
  EXPECT_TRUE(decoded[0].is_neighbor(2, 1));
  EXPECT_TRUE(decoded[0].is_neighbor(0, 3));
  EXPECT_FALSE(decoded[0].is_neighbor(0, 1));
}

TEST(TraceCodec, TruncatedAndCorruptTracesAreSchemaErrors) {
  const std::string bytes = encode_trace(synthetic_trace());

  // Bad magic / short header.
  EXPECT_THROW((void)decode_trace("not a trace"), std::invalid_argument);
  std::string corrupt = bytes;
  corrupt[0] = 'X';
  EXPECT_THROW((void)decode_trace(corrupt), std::invalid_argument);
  EXPECT_THROW((void)decode_trace(bytes.substr(0, 10)),
               std::invalid_argument);
  // Unsupported container version.
  corrupt = bytes;
  corrupt[8] = 99;
  EXPECT_THROW((void)decode_trace(corrupt), std::invalid_argument);
  // Unknown header flags (version 1 defines none).
  corrupt = bytes;
  corrupt[12] = 1;
  EXPECT_THROW((void)decode_trace(corrupt), std::invalid_argument);

  // Truncation anywhere in the record stream: mid length prefix and mid
  // payload both throw rather than returning partial data.
  EXPECT_THROW((void)decode_trace(std::string_view(bytes).substr(
                   0, 16 + 2)),
               std::invalid_argument);
  EXPECT_THROW(
      (void)decode_trace(std::string_view(bytes).substr(0, bytes.size() - 1)),
      std::invalid_argument);

  // A record whose link count promises more payload than exists must be
  // rejected before any allocation is attempted.
  std::string hostile = trace_header();
  std::string payload;
  payload.push_back('\xff');
  payload.push_back('\xff');
  payload.push_back('\xff');
  payload.push_back('\x7f');  // link_count = 0x7fffffff
  hostile.push_back(static_cast<char>(payload.size()));
  hostile.push_back(0);
  hostile.push_back(0);
  hostile.push_back(0);
  hostile += payload;
  EXPECT_THROW((void)decode_trace(hostile), std::invalid_argument);

  // A non-square LIR table is rejected at decode (as the JSON decoder
  // does), not deep inside a replay worker.
  std::string nonsquare = trace_header();
  std::string ns_payload;
  ns_payload.append(4, '\0');  // 0 links
  ns_payload.append(4, '\0');  // 0 neighbors
  ns_payload.append(8, '\0');  // lir_threshold
  ns_payload += std::string("\x01\x00\x00\x00", 4);  // rows = 1
  ns_payload += std::string("\x02\x00\x00\x00", 4);  // cols = 2
  ns_payload.append(16, '\0');                       // 2 doubles
  nonsquare.push_back(static_cast<char>(ns_payload.size()));
  nonsquare.append(3, '\0');
  nonsquare += ns_payload;
  EXPECT_THROW((void)decode_trace(nonsquare), std::invalid_argument);

  // A hostile LIR shape whose cell count wraps 64-bit byte math
  // (2^31 x 2^31) must fail the bounds check, not pass a wrapped one.
  std::string wrap = trace_header();
  std::string wrap_payload;
  wrap_payload.append(4, '\0');                    // 0 links
  wrap_payload.append(4, '\0');                    // 0 neighbors
  wrap_payload.append(8, '\0');                    // lir_threshold
  wrap_payload += std::string("\x00\x00\x00\x80", 4);  // rows = 2^31
  wrap_payload += std::string("\x00\x00\x00\x80", 4);  // cols = 2^31
  wrap.push_back(static_cast<char>(wrap_payload.size()));
  wrap.append(3, '\0');
  wrap += wrap_payload;
  EXPECT_THROW((void)decode_trace(wrap), std::invalid_argument);

  // Writing after close is an error, not silent data loss.
  const std::string path = temp_path("closed.trace");
  TraceWriter writer(path);
  writer.write(synthetic_trace()[0]);
  writer.close();
  EXPECT_THROW(writer.write(synthetic_trace()[0]), std::runtime_error);
}

TEST(TraceCodec, FileReaderDetectsTruncationAndWriterRejectsBadPath) {
  const std::vector<MeasurementSnapshot> rounds = synthetic_trace();
  const std::string path = temp_path("tail.trace");
  write_trace(path, rounds);

  // Chop the last byte off the file: the reader must throw on the final
  // record, after decoding the earlier ones cleanly.
  std::string bytes = encode_trace(rounds);
  bytes.pop_back();
  const std::string chopped = temp_path("chopped.trace");
  {
    std::FILE* f = std::fopen(chopped.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  }
  TraceReader reader(chopped);
  MeasurementSnapshot snap;
  ASSERT_TRUE(reader.next(snap));
  ASSERT_TRUE(reader.next(snap));
  EXPECT_THROW((void)reader.next(snap), std::invalid_argument);

  // A corrupt record length prefix (0xffffffff) must be rejected against
  // the file size BEFORE any buffer is sized — an error, not a 4 GiB
  // allocation attempt.
  std::string hostile_len = encode_trace({rounds[0]});
  hostile_len[16] = hostile_len[17] = hostile_len[18] = hostile_len[19] =
      static_cast<char>(0xff);
  const std::string hostile_path = temp_path("hostile-len.trace");
  {
    std::FILE* f = std::fopen(hostile_path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(hostile_len.data(), 1, hostile_len.size(), f),
              hostile_len.size());
    std::fclose(f);
  }
  TraceReader hostile_reader(hostile_path);
  EXPECT_THROW((void)hostile_reader.next(snap), std::invalid_argument);
  // The error poisoned the reader: retrying must not decode misaligned
  // bytes as records.
  EXPECT_THROW((void)hostile_reader.next(snap), std::runtime_error);

  // A non-trace file fails at construction; a missing path at open.
  const std::string garbage = temp_path("garbage.trace");
  {
    std::FILE* f = std::fopen(garbage.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("definitely not a trace header", f);
    std::fclose(f);
  }
  EXPECT_THROW(TraceReader r(garbage), std::invalid_argument);
  EXPECT_THROW(TraceReader r(temp_path("does/not/exist.trace")),
               std::runtime_error);
  EXPECT_THROW(TraceWriter w(temp_path("no/such/dir/out.trace")),
               std::runtime_error);
}

TEST(TraceReplay, RecordedRoundsReplayBitIdenticalPlans) {
  // The acceptance criterion: record an 8-round live run to a binary
  // trace, replay it through ControllerFleet with the same flows and
  // objective, and every round's plan must be bit-identical — with zero
  // Simulator construction anywhere on the replay path.
  const std::string path = temp_path("gateway8.trace");
  std::vector<RatePlan> live_plans;
  std::vector<FlowSpec> flows;
  {
    Workbench wb(211);
    build_gateway(wb);
    MeshController ctl(wb.net(), quick_config(), 211);
    add_gateway_flows(wb, ctl);
    flows = ctl.flow_specs();

    TraceWriter writer(path);
    ctl.record_to(&writer);
    for (int r = 0; r < 8; ++r) {
      const RoundResult round = ctl.run_round(wb);
      ASSERT_TRUE(round.ok) << "round " << r;
      live_plans.push_back(ctl.last_plan());
    }
    ctl.record_to(nullptr);
    writer.close();
    EXPECT_EQ(writer.rounds(), 8);
  }

  const std::vector<MeasurementSnapshot> trace = read_trace(path);
  ASSERT_EQ(trace.size(), 8u);

  const std::uint64_t sims_before = Simulator::constructed();
  ControllerFleet fleet(2);
  ReplayCell cell;
  cell.flows = flows;
  cell.plan = quick_config().plan();
  const std::vector<ReplayResult> results = fleet.replay({cell}, trace);
  EXPECT_EQ(Simulator::constructed(), sims_before)
      << "replay must not construct a Simulator";

  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].ok);
  ASSERT_EQ(results[0].plans.size(), 8u);
  for (std::size_t r = 0; r < 8; ++r)
    EXPECT_EQ(results[0].plans[r], live_plans[r]) << "round " << r;
}

TEST(TraceReplay, LiveSourceMatchesRunRoundSensing) {
  // LiveSource::next is the same windowed sensing step run_round uses, so
  // driving the controller through the SnapshotSource interface must
  // yield the identical snapshot sequence as the classic loop.
  Workbench wb_a(223);
  build_gateway(wb_a);
  MeshController ctl_a(wb_a.net(), quick_config(), 223);
  add_gateway_flows(wb_a, ctl_a);

  Workbench wb_b(223);
  build_gateway(wb_b);
  MeshController ctl_b(wb_b.net(), quick_config(), 223);
  add_gateway_flows(wb_b, ctl_b);

  LiveSource source(wb_a, ctl_a, /*max_windows=*/3);
  EXPECT_EQ(source.remaining(), 3);
  MeasurementSnapshot from_source;
  int windows = 0;
  while (source.next(from_source)) {
    (void)ctl_b.run_round(wb_b);
    EXPECT_EQ(from_source, ctl_b.snapshot()) << "window " << windows;
    ++windows;
  }
  EXPECT_EQ(windows, 3);
  EXPECT_EQ(source.remaining(), 0);
}

TEST(TraceReplay, FleetReplayIsBitIdenticalAcrossThreadCounts) {
  // A replay grid (objective x interference kind) over one shared trace,
  // run on 1 thread and on 4: every plan must be bit-for-bit identical.
  const std::string path = temp_path("grid.trace");
  std::vector<FlowSpec> flows;
  {
    Workbench wb(227);
    build_gateway(wb);
    ControllerConfig cfg = quick_config();
    MeshController ctl(wb.net(), cfg, 227);
    add_gateway_flows(wb, ctl);
    flows = ctl.flow_specs();
    const int l = static_cast<int>(ctl.links().size());
    DenseMatrix lir(l, l, 1.0);
    lir(0, 1) = lir(1, 0) = 0.2;
    ctl.set_lir_table(lir, 0.9);

    TraceWriter writer(path);
    ctl.record_to(&writer);
    LiveSource source(wb, ctl, /*max_windows=*/4);
    MeasurementSnapshot snap;
    while (source.next(snap)) {
    }
    writer.close();
  }
  const std::vector<MeasurementSnapshot> trace = read_trace(path);
  ASSERT_EQ(trace.size(), 4u);
  ASSERT_FALSE(trace[0].lir.empty());  // grid can exercise the LIR model

  std::vector<ReplayCell> cells;
  const Objective objectives[] = {Objective::kProportionalFair,
                                  Objective::kMaxThroughput,
                                  Objective::kMaxMin};
  for (const Objective obj : objectives) {
    for (const InterferenceModelKind kind :
         {InterferenceModelKind::kTwoHop, InterferenceModelKind::kLirTable}) {
      ReplayCell cell;
      cell.flows = flows;
      cell.plan.optimizer.objective = obj;
      cell.interference = kind;
      cells.push_back(std::move(cell));
    }
  }

  ControllerFleet serial(1);
  ControllerFleet parallel(4);
  const auto a = serial.replay(cells, trace);
  const auto b = parallel.replay(cells, trace);
  ASSERT_EQ(a.size(), cells.size());
  ASSERT_EQ(b.size(), cells.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, static_cast<int>(i));
    EXPECT_TRUE(a[i].ok) << "cell " << i;
    EXPECT_EQ(a[i].plans, b[i].plans) << "cell " << i;
  }
  // Distinct objectives genuinely produce distinct plans.
  EXPECT_NE(a[0].plans[0].y, a[2].plans[0].y);
}

TEST(ProbeSystem, BatchedWindowTimingMatchesIncremental) {
  // The batch-scheduling contract: precomputing a window of tick times
  // (one RNG pass up front) must leave every probe's arrival time
  // bit-identical to per-tick scheduling, through the window's end and
  // past the handoff back to incremental draws.
  auto run_side = [](int window_ticks) {
    Workbench wb(233);
    wb.add_nodes(2);
    wb.channel().set_rss_symmetric_dbm(0, 1, -58.0);
    std::vector<std::pair<TimeNs, std::uint64_t>> arrivals;
    const std::uint64_t handler = wb.net().node(1).add_handler(
        Protocol::kProbe, [&arrivals, &wb](const Packet& p, NodeId) {
          arrivals.emplace_back(wb.sim().now(), p.seq);
        });
    ProbeAgent agent(wb.net(), 0, RngStream(233, "probe-0"));
    agent.configure(0.25, {Rate::kR11Mbps});
    // Back-to-back "rounds" as the controller drives it (re-starts top
    // the batch back up mid-run; no-ops on the incremental side), a full
    // stop/restart (pre-drawn values must carry over so the restart's
    // phase draw still observes the right stream position), and a final
    // stretch running past every batched value so the per-tick fallback
    // is exercised too.
    agent.start(window_ticks);
    wb.run_for(8.0);
    agent.start(window_ticks);
    wb.run_for(8.0);
    agent.stop();
    wb.run_for(1.0);
    agent.start(window_ticks);
    wb.run_for(15.0);
    agent.stop();
    wb.net().node(1).remove_handler(Protocol::kProbe, handler);
    return arrivals;
  };

  const auto incremental = run_side(0);
  const auto batched = run_side(24);
  ASSERT_GT(incremental.size(), 150u);  // data + ack streams, ~128 ticks
  EXPECT_EQ(batched, incremental);
}

TEST(TraceReplay, GoldenTraceFixtureReplays) {
  // Golden binary fixture: a gateway trace recorded by this pipeline and
  // committed to the repo (CI uploads it next to the JSON schema
  // fixture). If the container format or snapshot payload drifts
  // incompatibly, this is the tripwire.
  const std::vector<MeasurementSnapshot> trace =
      read_trace(std::string(MESHOPT_SOURCE_DIR) +
                 "/tests/data/trace_fixture.bin");
  ASSERT_EQ(trace.size(), 4u);
  for (const MeasurementSnapshot& snap : trace) {
    ASSERT_EQ(snap.links.size(), 3u);
    EXPECT_GT(snap.links[0].estimate.capacity_bps, 0.0);
  }

  ReplayCell cell;
  cell.flows.resize(2);
  cell.flows[0].flow_id = 0;
  cell.flows[0].path = {0, 1, 2};
  cell.flows[1].flow_id = 1;
  cell.flows[1].path = {3, 2};
  ControllerFleet fleet(1);
  const std::vector<ReplayResult> results = fleet.replay({cell}, trace);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].ok);
  ASSERT_EQ(results[0].plans.size(), trace.size());
  for (const RatePlan& plan : results[0].plans) {
    EXPECT_GT(plan.y[0], 0.0);
    EXPECT_GT(plan.y[1], 0.0);
  }
}

void write_bytes(const std::string& path, const std::string& bytes) {
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  ASSERT_EQ(std::fclose(f), 0);
}

std::uint32_t u32_at(const std::string& bytes, std::size_t at) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[at])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[at + 1]))
             << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[at + 2]))
             << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[at + 3]))
             << 24;
}

TEST(TraceCodec, SkipAndCountSkipsACorruptPayloadAndKeepsReading) {
  const std::vector<MeasurementSnapshot> rounds = synthetic_trace();
  std::string bytes = encode_trace(rounds);

  // Walk the framing to record 1 and poison its payload's link count
  // (0xffffffff can never fit the payload), leaving the length prefix —
  // the resync point — intact. The record is individually undecodable but
  // the stream position after it is still exact.
  constexpr std::size_t kHeader = 16;
  const std::size_t record1 = kHeader + 4 + u32_at(bytes, kHeader);
  for (std::size_t i = 0; i < 4; ++i) bytes[record1 + 4 + i] = '\xff';

  const std::string path = temp_path("corrupt-middle.trace");
  write_bytes(path, bytes);

  // The strict default refuses the whole trace.
  EXPECT_THROW((void)read_trace(path), std::invalid_argument);

  // Skip-and-count salvages both intact records, in order and bit-exact,
  // and reports exactly one casualty.
  int corrupt = -1;
  const std::vector<MeasurementSnapshot> salvaged =
      read_trace(path, OnCorruptRecord::kSkipAndCount, &corrupt);
  ASSERT_EQ(salvaged.size(), 2u);
  EXPECT_EQ(salvaged[0], rounds[0]);
  EXPECT_EQ(salvaged[1], rounds[2]);
  EXPECT_EQ(corrupt, 1);

  // Same through the streaming reader and the SnapshotSource facade.
  TraceReader reader(path, OnCorruptRecord::kSkipAndCount);
  MeasurementSnapshot snap;
  int read = 0;
  while (reader.next(snap)) ++read;
  EXPECT_EQ(read, 2);
  EXPECT_EQ(reader.corrupt_records(), 1);

  TraceSource source =
      TraceSource::from_file(path, OnCorruptRecord::kSkipAndCount);
  EXPECT_EQ(source.remaining(), 2);
  EXPECT_EQ(source.corrupt_records(), 1);

  // Fleet replay under the policy plans every salvaged round; the strict
  // default propagates the decode error instead.
  ReplayCell cell;
  cell.flows.resize(1);
  cell.flows[0].flow_id = 0;
  cell.flows[0].path = {0, 1, 2};
  ControllerFleet fleet(1);
  ReplayOptions opts;
  opts.on_corrupt_record = OnCorruptRecord::kSkipAndCount;
  const std::vector<ReplayResult> results =
      fleet.replay_file({cell}, path, opts);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].ok);
  ASSERT_EQ(results[0].plans.size(), 2u);
  EXPECT_THROW((void)fleet.replay_file({cell}, path, ReplayOptions{}),
               std::invalid_argument);
}

TEST(TraceCodec, SkipAndCountSalvagesThePrefixWhenFramingIsDamaged) {
  const std::vector<MeasurementSnapshot> rounds = synthetic_trace();

  // A record chopped mid-payload: past the damage there is no trustworthy
  // length prefix to resync on, so the salvage is the intact prefix plus
  // one counted corrupt tail.
  std::string chopped = encode_trace(rounds);
  chopped.pop_back();
  const std::string tail_path = temp_path("corrupt-tail.trace");
  write_bytes(tail_path, chopped);

  EXPECT_THROW((void)read_trace(tail_path), std::invalid_argument);
  int corrupt = -1;
  const std::vector<MeasurementSnapshot> salvaged =
      read_trace(tail_path, OnCorruptRecord::kSkipAndCount, &corrupt);
  ASSERT_EQ(salvaged.size(), 2u);
  EXPECT_EQ(salvaged[0], rounds[0]);
  EXPECT_EQ(salvaged[1], rounds[1]);
  EXPECT_EQ(corrupt, 1);

  // A length prefix pointing past end-of-file is the same framing damage.
  std::string hostile = encode_trace(rounds);
  for (std::size_t i = 16; i < 20; ++i) hostile[i] = '\xff';
  const std::string hostile_path = temp_path("corrupt-length.trace");
  write_bytes(hostile_path, hostile);
  corrupt = -1;
  EXPECT_TRUE(
      read_trace(hostile_path, OnCorruptRecord::kSkipAndCount, &corrupt)
          .empty());
  EXPECT_EQ(corrupt, 1);

  // A pristine trace reads identically under either policy, zero counted.
  const std::string clean_path = temp_path("corrupt-none.trace");
  write_trace(clean_path, rounds);
  corrupt = -1;
  EXPECT_EQ(read_trace(clean_path, OnCorruptRecord::kSkipAndCount, &corrupt),
            rounds);
  EXPECT_EQ(corrupt, 0);
}

}  // namespace
}  // namespace meshopt
