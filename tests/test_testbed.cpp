#include "scenario/testbed.h"

#include <gtest/gtest.h>

#include <set>

#include "estimation/lir.h"

namespace meshopt {
namespace {

TEST(Testbed, BuildsRequestedNodeCount) {
  Workbench wb(1);
  Testbed tb(wb, TestbedConfig{.seed = 1});
  EXPECT_EQ(wb.net().node_count(), 18);
  EXPECT_EQ(tb.positions().size(), 18u);
}

TEST(Testbed, DeterministicPerSeed) {
  Workbench wa(1), wc(1);
  Testbed ta(wa, TestbedConfig{.seed = 5});
  Testbed tc(wc, TestbedConfig{.seed = 5});
  for (int i = 0; i < 18; ++i) {
    EXPECT_DOUBLE_EQ(ta.positions()[std::size_t(i)].x,
                     tc.positions()[std::size_t(i)].x);
  }
  EXPECT_DOUBLE_EQ(wa.channel().rss_dbm(0, 7), wc.channel().rss_dbm(0, 7));
}

TEST(Testbed, DifferentSeedsDiffer) {
  Workbench wa(1), wc(1);
  Testbed ta(wa, TestbedConfig{.seed = 5});
  Testbed tc(wc, TestbedConfig{.seed = 6});
  EXPECT_NE(wa.channel().rss_dbm(0, 7), wc.channel().rss_dbm(0, 7));
}

TEST(Testbed, RssSymmetric) {
  Workbench wb(1);
  Testbed tb(wb, TestbedConfig{.seed = 2});
  for (NodeId a = 0; a < 18; ++a)
    for (NodeId b = a + 1; b < 18; ++b)
      EXPECT_DOUBLE_EQ(wb.channel().rss_dbm(a, b),
                       wb.channel().rss_dbm(b, a));
}

TEST(Testbed, HasUsableLinksAtBothRates) {
  Workbench wb(1);
  Testbed tb(wb, TestbedConfig{.seed = 3});
  const auto l1 = tb.usable_links(Rate::kR1Mbps);
  const auto l11 = tb.usable_links(Rate::kR11Mbps);
  EXPECT_GT(l1.size(), 20u);
  // 11 Mb/s needs more SNR: strictly fewer usable links.
  EXPECT_LT(l11.size(), l1.size());
  EXPECT_GT(l11.size(), 5u);
}

TEST(Testbed, IntraClusterLinksAreStrong) {
  Workbench wb(1);
  Testbed tb(wb, TestbedConfig{.seed = 4});
  // Nodes 0 and 4 share cluster 0 (i % 4); mostly strong RSS.
  int strong = 0, total = 0;
  for (NodeId a = 0; a < 18; ++a) {
    for (NodeId b = a + 1; b < 18; ++b) {
      if (tb.cluster_of(a) == tb.cluster_of(b)) {
        ++total;
        if (wb.channel().rss_dbm(a, b) > -80.0) ++strong;
      }
    }
  }
  EXPECT_GT(total, 0);
  EXPECT_GT(static_cast<double>(strong) / total, 0.7);
}

TEST(Testbed, ConnectedEnoughForMultiHop) {
  Workbench wb(1);
  Testbed tb(wb, TestbedConfig{.seed = 1});
  // Union-find over the neighbor relation: expect one component holding
  // most nodes.
  std::vector<int> parent(18);
  for (int i = 0; i < 18; ++i) parent[std::size_t(i)] = i;
  std::function<int(int)> find = [&](int x) {
    return parent[std::size_t(x)] == x
               ? x
               : parent[std::size_t(x)] = find(parent[std::size_t(x)]);
  };
  for (NodeId a = 0; a < 18; ++a)
    for (NodeId b = a + 1; b < 18; ++b)
      if (tb.neighbors(a, b)) parent[std::size_t(find(a))] = find(b);
  std::map<int, int> comp;
  for (int i = 0; i < 18; ++i) ++comp[find(i)];
  int biggest = 0;
  for (auto& [_, c] : comp) biggest = std::max(biggest, c);
  EXPECT_GE(biggest, 14);
}

TEST(Testbed, LirDiversityAcrossPairs) {
  // A handful of link pairs must show both interfering and non-interfering
  // behavior — the raw material of the paper's Fig. 3.
  Workbench wb(9);
  Testbed tb(wb, TestbedConfig{.seed = 9});
  auto links = tb.usable_links(Rate::kR11Mbps);
  ASSERT_GE(links.size(), 6u);
  int low = 0, high = 0, tested = 0;
  for (std::size_t i = 0; i + 1 < links.size() && tested < 6; i += 2) {
    const LinkRef a = links[i];
    const LinkRef b = links[i + 1];
    // Need four distinct nodes.
    std::set<NodeId> ids{a.src, a.dst, b.src, b.dst};
    if (ids.size() != 4) continue;
    const LirMeasurement m = measure_lir(wb, a, b, 3.0);
    if (m.c11 < 1e5 || m.c22 < 1e5) continue;  // skip dead links
    ++tested;
    if (m.lir() < 0.8) ++low;
    if (m.lir() > 0.9) ++high;
  }
  EXPECT_GT(tested, 2);
  EXPECT_GT(low + high, 0);
}

}  // namespace
}  // namespace meshopt
