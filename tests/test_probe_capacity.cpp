// End-to-end probing + capacity estimation on live simulated links: the
// online pipeline (broadcast probes -> loss patterns -> channel-loss
// estimator -> Eq. 6) must track the directly measured maxUDP throughput
// — with and without interfering background traffic (paper Section 5.4).

#include <gtest/gtest.h>

#include <memory>

#include "estimation/capacity.h"
#include "probe/adhoc_probe.h"
#include "probe/probe_system.h"
#include "scenario/topologies.h"
#include "scenario/workbench.h"
#include "transport/udp.h"

namespace meshopt {
namespace {

struct ProbeRun {
  double measured_maxudp = 0.0;
  double estimated_capacity = 0.0;
  double p_data_est = 0.0;
  double true_p_data = 0.0;
};

ProbeRun run_probe_experiment(double p_ch, Rate rate, bool with_interference,
                              std::uint64_t seed) {
  Workbench wb(seed);
  wb.add_nodes(4);
  TwoLinkParams params;
  params.cls =
      with_interference ? TopologyClass::kIA : TopologyClass::kIndependent;
  params.interference_dbm = -63.0;
  params.p_ch_a = p_ch;
  auto [a, b] = build_two_link(wb, params, rate, rate);

  ProbeRun out;
  out.true_p_data = p_ch;
  // Ground truth: maxUDP alone.
  out.measured_maxudp = wb.measure_backlogged({a}, 15.0)[0];

  // Online phase: probe while link B floods (when with_interference).
  ProbeAgent agent_a(wb.net(), a.src, RngStream(seed, "agent-a"));
  ProbeAgent agent_b(wb.net(), a.dst, RngStream(seed, "agent-b"));
  agent_a.configure(0.05, {rate});  // accelerated probing for test speed
  agent_b.configure(0.05, {rate});
  ProbeMonitor mon_dst(wb.net(), a.dst);
  ProbeMonitor mon_src(wb.net(), a.src);
  agent_a.start();
  agent_b.start();

  std::unique_ptr<UdpSource> interferer;
  int bflow = -1;
  if (with_interference) {
    // ON/OFF bursty interference (2 s saturated, 3 s silent): collision
    // losses arrive in bursts spanning many probes — the loss structure
    // the estimator is designed for (paper observation (ii)). A memoryless
    // interferer would make collisions look uniform per probe, which is
    // indistinguishable from channel loss by design.
    wb.net().node(b.src).set_route(b.dst, b.dst);
    wb.net().node(b.src).set_link_rate(b.dst, b.rate);
    bflow = wb.net().open_flow(b.src, b.dst, Protocol::kUdp, 1470);
    interferer = std::make_unique<UdpSource>(
        wb.net(), bflow, UdpMode::kBacklogged, 0.0, RngStream(seed, "intf"));
    std::function<void(bool)> toggle = [&](bool on) {
      if (on) {
        interferer->start();
      } else {
        interferer->stop();
      }
      wb.sim().schedule(seconds(on ? 2.0 : 3.0),
                        [&toggle, on] { toggle(!on); });
    };
    toggle(true);
    wb.run_for(0.05 * 1300);
    interferer->stop();
  } else {
    wb.run_for(0.05 * 1300);  // ~1280-probe window
  }
  agent_a.stop();
  agent_b.stop();
  if (interferer) interferer->stop();

  const auto est = estimate_link_capacity(
      MacTimings{}, 1470, rate, mon_dst, a.src, mon_src, a.dst,
      agent_a.sent(rate, ProbeKind::kDataProbe),
      agent_b.sent(Rate::kR1Mbps, ProbeKind::kAckProbe));
  out.estimated_capacity = est.capacity_bps;
  out.p_data_est = est.p_data;
  return out;
}

TEST(ProbeCapacity, CleanLinkEstimateMatchesMaxUdp) {
  const auto r = run_probe_experiment(0.0, Rate::kR11Mbps, false, 31);
  EXPECT_NEAR(r.p_data_est, 0.0, 0.02);
  EXPECT_NEAR(r.estimated_capacity, r.measured_maxudp,
              0.10 * r.measured_maxudp);
}

TEST(ProbeCapacity, LossyLinkEstimateTracksMaxUdp) {
  const auto r = run_probe_experiment(0.25, Rate::kR1Mbps, false, 33);
  EXPECT_NEAR(r.p_data_est, 0.25, 0.06);
  EXPECT_NEAR(r.estimated_capacity, r.measured_maxudp,
              0.15 * r.measured_maxudp);
}

TEST(ProbeCapacity, InterferenceDoesNotCorruptEstimate) {
  // The headline property (paper Fig. 11): estimation runs while a hidden
  // interferer floods, yet recovers the channel-only capacity.
  const auto quiet = run_probe_experiment(0.15, Rate::kR1Mbps, false, 35);
  const auto busy = run_probe_experiment(0.15, Rate::kR1Mbps, true, 35);
  EXPECT_NEAR(busy.p_data_est, quiet.p_data_est, 0.10);
  EXPECT_NEAR(busy.estimated_capacity, quiet.estimated_capacity,
              0.20 * quiet.estimated_capacity);
}

TEST(ProbeCapacity, DeadStreamsYieldZeroCapacity) {
  Workbench wb(37);
  wb.add_nodes(2);
  ProbeMonitor mon0(wb.net(), 0);
  ProbeMonitor mon1(wb.net(), 1);
  // Nothing was ever probed: both streams missing -> loss 1 -> capacity
  // at the clamp floor.
  const auto est = estimate_link_capacity(MacTimings{}, 1470, Rate::kR1Mbps,
                                          mon1, 0, mon0, 1, 100, 100);
  EXPECT_NEAR(est.p_link, 1.0, 1e-12);
  EXPECT_LT(est.capacity_bps, 0.2e6);
}

TEST(AdHocProbeBaseline, TracksNominalNotMaxUdp) {
  // On a lossy link AdHoc Probe's min-dispersion estimate stays near the
  // nominal rate while true maxUDP collapses — the failure mode Fig. 11
  // demonstrates.
  Workbench wb(41);
  wb.add_nodes(2);
  wb.channel().set_rss_symmetric_dbm(0, 1, -55.0);
  auto errors = std::make_shared<TableErrorModel>();
  errors->set(0, 1, Rate::kR1Mbps, 0.4);
  wb.channel().set_error_model(std::move(errors));

  const double maxudp =
      wb.measure_backlogged({LinkRef{0, 1, Rate::kR1Mbps}}, 10.0)[0];

  wb.net().node(0).set_route(1, 1);
  wb.net().node(0).set_link_rate(1, Rate::kR1Mbps);
  AdHocProbe probe(wb.net(), 0, 1);
  probe.start(150, 0.05);
  wb.run_for(10.0);

  ASSERT_GT(probe.pairs_completed(), 20);
  const double adhoc = probe.capacity_estimate_bps();
  const double nominal = nominal_throughput_bps(MacTimings{}, 1470,
                                                Rate::kR1Mbps);
  // AdHoc Probe over-estimates the lossy link's deliverable throughput.
  EXPECT_GT(adhoc, 1.3 * maxudp);
  EXPECT_GT(adhoc, 0.7 * nominal);
}

TEST(ProbeSystem, RecorderCountsPlantedLosses) {
  LossRecorder rec;
  rec.begin_window(0);
  // Receive 0,1,2, lose 3,4, receive 5.
  for (std::uint64_t s : {0u, 1u, 2u, 5u}) rec.on_probe(s);
  const auto pat = rec.pattern(8);
  ASSERT_EQ(pat.size(), 8u);
  EXPECT_EQ(pat[3], 1);
  EXPECT_EQ(pat[4], 1);
  EXPECT_EQ(pat[0], 0);
  EXPECT_EQ(pat[5], 0);
  EXPECT_EQ(pat[6], 1);  // trailing padding counts as lost
  EXPECT_NEAR(rec.loss_rate(8), 4.0 / 8.0, 1e-12);
}

TEST(ProbeSystem, WindowBaseOffsetsSequence) {
  LossRecorder rec;
  rec.begin_window(100);
  rec.on_probe(99);   // pre-window straggler must be ignored
  rec.on_probe(101);  // seq 100 lost, 101 received
  const auto pat = rec.pattern(3);
  ASSERT_EQ(pat.size(), 3u);
  EXPECT_EQ(pat[0], 1);
  EXPECT_EQ(pat[1], 0);
  EXPECT_EQ(pat[2], 1);
}

TEST(ProbeSystem, AgentEmitsBothProbeKinds) {
  Workbench wb(43);
  wb.add_nodes(2);
  wb.channel().set_rss_symmetric_dbm(0, 1, -55.0);
  ProbeAgent agent(wb.net(), 0, RngStream(43, "a"));
  agent.configure(0.1, {Rate::kR11Mbps});
  ProbeMonitor mon(wb.net(), 1);
  agent.start();
  wb.run_for(5.0);
  agent.stop();
  EXPECT_GT(agent.sent(Rate::kR11Mbps, ProbeKind::kDataProbe), 40u);
  EXPECT_GT(agent.sent(Rate::kR1Mbps, ProbeKind::kAckProbe), 40u);
  EXPECT_NE(mon.stream({0, Rate::kR11Mbps, ProbeKind::kDataProbe}), nullptr);
  EXPECT_NE(mon.stream({0, Rate::kR1Mbps, ProbeKind::kAckProbe}), nullptr);
}

}  // namespace
}  // namespace meshopt
