// End-to-end tests of the online optimization loop (the paper's system):
// probe concurrently with traffic, estimate, optimize, rate-limit.

#include "core/controller.h"

#include <gtest/gtest.h>

#include <memory>

#include "scenario/workbench.h"
#include "transport/tcp.h"
#include "transport/udp.h"
#include "util/stats.h"

namespace meshopt {
namespace {

/// Chain topology 0-1-2 plus a 1-hop cross flow 3->2 (the starvation
/// gateway scenario at node 2).
void build_gateway(Workbench& wb) {
  wb.add_nodes(4);
  Channel& ch = wb.channel();
  for (NodeId a = 0; a < 4; ++a)
    for (NodeId b = 0; b < 4; ++b)
      if (a != b) ch.set_rss_dbm(a, b, -120.0);
  ch.set_rss_symmetric_dbm(0, 1, -58.0);
  ch.set_rss_symmetric_dbm(1, 2, -58.0);
  ch.set_rss_symmetric_dbm(3, 2, -56.0);
  ch.set_rss_symmetric_dbm(1, 3, -70.0);
}

TEST(Controller, EstimatesCleanChainCapacities) {
  Workbench wb(71);
  build_gateway(wb);

  ControllerConfig cfg;
  cfg.probe_period_s = 0.5;  // paper probing period: keeps probe duty ~3%
  cfg.probe_window = 120;
  MeshController ctl(wb.net(), cfg, 71);

  ManagedFlow f1;
  f1.flow_id = wb.net().open_flow(0, 2, Protocol::kUdp, 1470);
  f1.path = {0, 1, 2};
  ctl.manage_flow(f1);

  ctl.start_probing();
  wb.run_for(ctl.probing_window_seconds() + 1.0);
  ctl.update_estimates();

  ASSERT_EQ(ctl.link_estimates().size(), 2u);
  for (const auto& row : ctl.link_estimates()) {
    EXPECT_LT(row.estimate.p_link, 0.1) << row.link.src << "->" << row.link.dst;
    EXPECT_GT(row.estimate.capacity_bps, 0.6e6);
  }
}

TEST(Controller, RoundProducesFeasibleRates) {
  Workbench wb(73);
  build_gateway(wb);

  ControllerConfig cfg;
  cfg.probe_period_s = 0.5;
  cfg.probe_window = 120;
  cfg.optimizer.objective = Objective::kProportionalFair;
  MeshController ctl(wb.net(), cfg, 73);

  ManagedFlow two_hop;
  two_hop.flow_id = wb.net().open_flow(0, 2, Protocol::kUdp, 1470);
  two_hop.path = {0, 1, 2};
  ctl.manage_flow(two_hop);
  ManagedFlow one_hop;
  one_hop.flow_id = wb.net().open_flow(3, 2, Protocol::kUdp, 1470);
  one_hop.path = {3, 2};
  ctl.manage_flow(one_hop);

  const RoundResult round = ctl.run_round(wb);
  ASSERT_TRUE(round.ok);
  ASSERT_EQ(round.y.size(), 2u);
  // Both flows strictly positive under proportional fairness.
  EXPECT_GT(round.y[0], 0.05e6);
  EXPECT_GT(round.y[1], 0.05e6);
  // All three links conflict (two-hop model): time sharing across the
  // two-hop flow (using 2 links) and the one-hop flow. Aggregate link load
  // must fit within ~1 link worth of airtime.
  const double cap = round.links[0].estimate.capacity_bps;
  EXPECT_LT(2.0 * round.y[0] + round.y[1], 1.15 * cap);
  // Input rates at least the output targets (loss compensation >= 1).
  EXPECT_GE(round.x[0], round.y[0] * 0.999);
  EXPECT_GE(round.x[1], round.y[1] * 0.999);
  // All links pairwise conflict -> the maximal independent sets are the
  // three singletons, one extreme point per link.
  EXPECT_EQ(round.extreme_points, 3);
}

TEST(Controller, AppliesRatesThroughCallback) {
  Workbench wb(79);
  build_gateway(wb);

  ControllerConfig cfg;
  cfg.probe_period_s = 0.5;
  cfg.probe_window = 100;
  MeshController ctl(wb.net(), cfg, 79);

  double applied = -1.0;
  ManagedFlow f;
  f.flow_id = wb.net().open_flow(3, 2, Protocol::kUdp, 1470);
  f.path = {3, 2};
  f.apply_rate = [&](double x) { applied = x; };
  ctl.manage_flow(f);

  const RoundResult round = ctl.run_round(wb);
  ASSERT_TRUE(round.ok);
  EXPECT_GT(applied, 0.0);
  EXPECT_DOUBLE_EQ(applied, round.x[0]);
}

TEST(Controller, TcpFlowGetsAckAirtimeDiscount) {
  Workbench wb(83);
  build_gateway(wb);

  ControllerConfig cfg;
  cfg.probe_period_s = 0.5;
  cfg.probe_window = 100;
  MeshController ctl(wb.net(), cfg, 83);

  ManagedFlow udp;
  udp.flow_id = wb.net().open_flow(3, 2, Protocol::kUdp, 1470);
  udp.path = {3, 2};
  ctl.manage_flow(udp);

  const RoundResult base = ctl.run_round(wb);
  ASSERT_TRUE(base.ok);

  // Same flow marked TCP: applied input rate scales by the ACK factor.
  Workbench wb2(83);
  build_gateway(wb2);
  MeshController ctl2(wb2.net(), cfg, 83);
  ManagedFlow tcp = udp;
  tcp.flow_id = wb2.net().open_flow(3, 2, Protocol::kTcpData, 1460);
  tcp.is_tcp = true;
  ctl2.manage_flow(tcp);
  const RoundResult t = ctl2.run_round(wb2);
  ASSERT_TRUE(t.ok);
  EXPECT_NEAR(t.x[0] / t.y[0], tcp_ack_airtime_factor(), 0.02);
  EXPECT_NEAR(base.x[0] / base.y[0], 1.0, 0.02);
}

TEST(Controller, RateControlRescuesStarvedTcpFlow) {
  // The headline result (Fig. 13): without rate control the 1-hop TCP flow
  // starves the 2-hop one; the controller's proportional-fair rates revive
  // the 2-hop flow.
  Workbench wb(87);
  build_gateway(wb);
  wb.net().set_path_routes({0, 1, 2}, Rate::kR1Mbps);
  wb.net().set_path_routes({3, 2}, Rate::kR1Mbps);

  TcpFlow far(wb.net(), 0, 2, TcpParams{}, RngStream(87, "far"));
  TcpFlow near(wb.net(), 3, 2, TcpParams{}, RngStream(87, "near"));
  far.start();
  near.start();

  // Phase 1: no rate control.
  wb.run_for(10.0);
  far.reset_goodput();
  near.reset_goodput();
  wb.run_for(20.0);
  const double far_norc = far.goodput_bps(20.0);
  const double near_norc = near.goodput_bps(20.0);
  EXPECT_LT(far_norc, 0.25 * near_norc);  // starving

  // Phase 2: controller round, then apply rates. Headroom compensates for
  // capacity under-estimation while probing against saturated TCP (whose
  // collisions are continuous rather than bursty, so the estimator cannot
  // filter them — the same regime the paper's Section 6.3 flags).
  ControllerConfig cfg;
  cfg.probe_period_s = 0.5;
  cfg.probe_window = 120;
  cfg.optimizer.objective = Objective::kProportionalFair;
  cfg.headroom = 0.7;
  MeshController ctl(wb.net(), cfg, 87);

  ManagedFlow mf_far;
  mf_far.flow_id = far.data_flow_id();
  mf_far.path = {0, 1, 2};
  mf_far.is_tcp = true;
  mf_far.apply_rate = [&](double x) { far.set_rate_limit_bps(x); };
  ctl.manage_flow(mf_far);
  ManagedFlow mf_near;
  mf_near.flow_id = near.data_flow_id();
  mf_near.path = {3, 2};
  mf_near.is_tcp = true;
  mf_near.apply_rate = [&](double x) { near.set_rate_limit_bps(x); };
  ctl.manage_flow(mf_near);

  const RoundResult round = ctl.run_round(wb);
  ASSERT_TRUE(round.ok);
  ctl.stop_probing();

  wb.run_for(5.0);  // settle
  far.reset_goodput();
  near.reset_goodput();
  wb.run_for(20.0);
  const double far_rc = far.goodput_bps(20.0);
  const double near_rc = near.goodput_bps(20.0);

  // Starvation gone: the far flow gains several-fold...
  EXPECT_GT(far_rc, 3.0 * far_norc);
  EXPECT_GT(far_rc, 0.05 * near_rc);
  // ...and fairness improves.
  const double jfi_norc =
      jain_fairness_index(std::vector<double>{far_norc, near_norc});
  const double jfi_rc =
      jain_fairness_index(std::vector<double>{far_rc, near_rc});
  EXPECT_GT(jfi_rc, jfi_norc + 0.05);
}

TEST(Controller, LirTableOverridesTwoHop) {
  Workbench wb(91);
  build_gateway(wb);
  ControllerConfig cfg;
  cfg.probe_period_s = 0.5;
  cfg.probe_window = 100;
  MeshController ctl(wb.net(), cfg, 91);

  ManagedFlow f1;
  f1.flow_id = wb.net().open_flow(0, 2, Protocol::kUdp, 1470);
  f1.path = {0, 1, 2};
  ctl.manage_flow(f1);
  ManagedFlow f2;
  f2.flow_id = wb.net().open_flow(3, 2, Protocol::kUdp, 1470);
  f2.path = {3, 2};
  ctl.manage_flow(f2);

  // Claim (falsely, for the test) that all links are independent: the
  // optimizer should then hand every flow its full link capacity.
  const int l = static_cast<int>(ctl.links().size());
  ctl.set_lir_table(DenseMatrix(l, l, 1.0));

  const RoundResult round = ctl.run_round(wb);
  ASSERT_TRUE(round.ok);
  EXPECT_EQ(round.extreme_points, 1);  // one MIS containing all links
  const double cap = round.links[0].estimate.capacity_bps;
  EXPECT_GT(round.y[0] + round.y[1], 1.2 * cap);  // beyond time sharing
}

}  // namespace
}  // namespace meshopt
