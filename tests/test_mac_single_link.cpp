// Validation of the DCF simulator on a single isolated link: measured
// maxUDP throughput must track the closed-form airtime model (which is the
// entire premise of the paper's Eq. 6 capacity representation).

#include <gtest/gtest.h>

#include <memory>

#include "mac/airtime.h"
#include "scenario/workbench.h"

namespace meshopt {
namespace {

constexpr int kPayload = 1470;

double measure_clean_link(Rate rate, double p_loss, double duration_s = 20.0,
                          std::uint64_t seed = 7) {
  Workbench wb(seed);
  wb.add_nodes(2);
  wb.channel().set_rss_symmetric_dbm(0, 1, -55.0);
  auto errors = std::make_shared<TableErrorModel>();
  errors->set(0, 1, rate, p_loss);
  wb.channel().set_error_model(std::move(errors));
  return wb.measure_backlogged({LinkRef{0, 1, rate}}, duration_s,
                               kPayload)[0];
}

TEST(MacSingleLink, LosslessThroughputMatchesNominalModel1Mbps) {
  const double measured = measure_clean_link(Rate::kR1Mbps, 0.0);
  const double model = nominal_throughput_bps(MacTimings{}, kPayload,
                                              Rate::kR1Mbps);
  EXPECT_NEAR(measured, model, 0.03 * model)
      << "measured=" << measured << " model=" << model;
}

TEST(MacSingleLink, LosslessThroughputMatchesNominalModel11Mbps) {
  const double measured = measure_clean_link(Rate::kR11Mbps, 0.0);
  const double model = nominal_throughput_bps(MacTimings{}, kPayload,
                                              Rate::kR11Mbps);
  EXPECT_NEAR(measured, model, 0.03 * model);
}

class LossSweep : public ::testing::TestWithParam<std::tuple<Rate, double>> {};

TEST_P(LossSweep, Eq6TracksSimulatedThroughput) {
  const auto [rate, p] = GetParam();
  const double measured = measure_clean_link(rate, p, 25.0);
  const double model = max_udp_throughput_bps(MacTimings{}, kPayload, rate, p);
  // Eq. 6 is an approximation (the paper reports ~12% RMSE): its
  // floor(ETX) backoff term undercounts the geometric tail of retry
  // backoffs, which shows at high loss where airtime stops dominating.
  const double tol = p <= 0.3 ? 0.10 : 0.20;
  EXPECT_NEAR(measured, model, tol * model)
      << rate_name(rate) << " p=" << p << " measured=" << measured
      << " model=" << model;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LossSweep,
    ::testing::Combine(::testing::Values(Rate::kR1Mbps, Rate::kR11Mbps),
                       ::testing::Values(0.0, 0.1, 0.2, 0.3, 0.4)));

TEST(MacSingleLink, RetryLimitDropsUnderExtremeLoss) {
  Workbench wb(11);
  wb.add_nodes(2);
  wb.channel().set_rss_symmetric_dbm(0, 1, -55.0);
  auto errors = std::make_shared<TableErrorModel>();
  errors->set(0, 1, Rate::kR1Mbps, 0.95);
  wb.channel().set_error_model(std::move(errors));
  wb.measure_backlogged({LinkRef{0, 1, Rate::kR1Mbps}}, 10.0, kPayload);
  EXPECT_GT(wb.net().node(0).mac().stats().tx_dropped, 0u);
}

TEST(MacSingleLink, NoLossesMeansNoRetries) {
  Workbench wb(13);
  wb.add_nodes(2);
  wb.channel().set_rss_symmetric_dbm(0, 1, -55.0);
  wb.measure_backlogged({LinkRef{0, 1, Rate::kR1Mbps}}, 5.0, kPayload);
  const MacStats& st = wb.net().node(0).mac().stats();
  EXPECT_EQ(st.tx_dropped, 0u);
  EXPECT_EQ(st.tx_attempts, st.tx_success);
  EXPECT_EQ(wb.net().node(1).mac().stats().rx_duplicates, 0u);
}

TEST(MacSingleLink, DuplicateFilteringUnderAckLoss) {
  // Lose many ACKs (1 Mb/s entries affect ACK frames): the receiver must
  // filter retransmitted duplicates rather than deliver them twice.
  Workbench wb(17);
  wb.add_nodes(2);
  wb.channel().set_rss_symmetric_dbm(0, 1, -55.0);
  auto errors = std::make_shared<TableErrorModel>();
  errors->set(1, 0, Rate::kR1Mbps, 0.4);  // ACK direction
  wb.channel().set_error_model(std::move(errors));
  wb.measure_backlogged({LinkRef{0, 1, Rate::kR11Mbps}}, 10.0, kPayload);
  const MacStats& rx = wb.net().node(1).mac().stats();
  EXPECT_GT(rx.rx_duplicates, 0u);
  // Delivered count (deduped) must not exceed sender successes + in-flight.
  const MacStats& tx = wb.net().node(0).mac().stats();
  EXPECT_LE(rx.rx_delivered, tx.tx_success + tx.tx_dropped + 2);
}

TEST(MacSingleLink, BroadcastNeverRetransmits) {
  Workbench wb(19);
  wb.add_nodes(2);
  wb.channel().set_rss_symmetric_dbm(0, 1, -55.0);
  auto errors = std::make_shared<TableErrorModel>();
  errors->set(0, 1, Rate::kR1Mbps, 0.5);
  wb.channel().set_error_model(std::move(errors));
  wb.net().node(0).mac().set_queue_capacity(256);

  // Send 200 broadcast packets directly through the node.
  int sent = 0;
  for (int i = 0; i < 200; ++i) {
    Packet p;
    p.src = 0;
    p.dst = kBroadcast;
    p.proto = Protocol::kProbe;
    p.bytes = 100;
    p.seq = static_cast<std::uint64_t>(i);
    if (wb.net().node(0).send_broadcast(p, Rate::kR1Mbps)) ++sent;
  }
  wb.run_for(10.0);
  const MacStats& st = wb.net().node(0).mac().stats();
  EXPECT_EQ(st.tx_attempts, static_cast<std::uint64_t>(sent));
  // Roughly half should be lost to the 0.5 channel error (binomial bounds).
  const auto delivered = wb.net().node(1).mac().stats().rx_delivered;
  EXPECT_GT(delivered, 60u);
  EXPECT_LT(delivered, 140u);
}

TEST(MacSingleLink, QueueCapacityRespected) {
  Workbench wb(23);
  wb.add_nodes(2);
  wb.channel().set_rss_symmetric_dbm(0, 1, -55.0);
  wb.net().node(0).mac().set_queue_capacity(4);
  for (int i = 0; i < 10; ++i) {
    Packet p;
    p.src = 0;
    p.dst = kBroadcast;
    p.proto = Protocol::kProbe;
    p.bytes = 100;
    wb.net().node(0).send_broadcast(p, Rate::kR1Mbps);
  }
  EXPECT_GT(wb.net().node(0).mac().stats().queue_rejections, 0u);
  wb.run_for(1.0);
}

TEST(MacSingleLink, DeterministicAcrossRuns) {
  const double a = measure_clean_link(Rate::kR11Mbps, 0.2, 5.0, 99);
  const double b = measure_clean_link(Rate::kR11Mbps, 0.2, 5.0, 99);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(MacSingleLink, SeedChangesJitterButNotMean) {
  const double a = measure_clean_link(Rate::kR11Mbps, 0.0, 5.0, 1);
  const double b = measure_clean_link(Rate::kR11Mbps, 0.0, 5.0, 2);
  EXPECT_NEAR(a, b, 0.05 * a);
}

}  // namespace
}  // namespace meshopt
