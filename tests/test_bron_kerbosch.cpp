// Regression tests for the bitset Bron–Kerbosch enumeration: pivoting must
// prune (the historical implementation copied P and X through an
// initializer list on every recursion level and degraded badly on dense
// compatibility graphs), and the packed-row adjacency must behave across
// 64-bit word boundaries.

#include "model/conflict_graph.h"

#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "util/rng.h"

namespace meshopt {
namespace {

TEST(BronKerboschPivot, EmptyConflictGraphIsOneSet) {
  // No conflicts: the complement is K_n, whose single maximal clique is
  // everything. Without pivoting the recursion still terminates, but a
  // correct pivot prunes the candidate set to one vertex per level; n = 64
  // finishing instantly (and returning exactly one set) is the regression
  // guard.
  const int n = 64;
  const ConflictGraph g(n);
  const auto t0 = std::chrono::steady_clock::now();
  const auto mis = g.maximal_independent_sets();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_EQ(mis.size(), 1u);
  EXPECT_EQ(mis[0].size(), static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) EXPECT_EQ(mis[0][std::size_t(v)], v);
  EXPECT_LT(elapsed, 1.0) << "pivoting no longer prunes";
}

TEST(BronKerboschPivot, NearEmptyConflictGraphStaysSmall) {
  // A sparse conflict graph has a dense complement — the regime where a
  // broken pivot blows up. 60 links, 3 conflicts: 2^3 = 8 sets at most.
  ConflictGraph g(60);
  g.add_conflict(0, 1);
  g.add_conflict(20, 21);
  g.add_conflict(40, 59);
  const auto mis = g.maximal_independent_sets();
  EXPECT_EQ(mis.size(), 8u);
  // One endpoint of each conflicting pair is excluded per set.
  for (const auto& s : mis) EXPECT_EQ(s.size(), 57u);
}

TEST(PackedRows, WordBoundarySizes) {
  // Exercise n straddling the uint64 row boundaries.
  for (int n : {63, 64, 65, 127, 128, 129}) {
    ConflictGraph g(n);
    g.add_conflict(0, n - 1);
    g.add_conflict(n / 2, n - 1);
    EXPECT_TRUE(g.conflicts(0, n - 1));
    EXPECT_TRUE(g.conflicts(n - 1, 0));
    EXPECT_TRUE(g.conflicts(n / 2, n - 1));
    EXPECT_FALSE(g.conflicts(0, n / 2));
    EXPECT_EQ(g.edge_count(), 2);

    // Complete graph across a boundary: MIS = n singletons.
    ConflictGraph k(n);
    for (int i = 0; i < n; ++i)
      for (int j = i + 1; j < n; ++j) k.add_conflict(i, j);
    const auto mis = k.maximal_independent_sets();
    ASSERT_EQ(mis.size(), static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(mis[std::size_t(i)], std::vector<int>{i});
    }
  }
}

TEST(PackedRows, CapBoundsOutput) {
  // 2^10 = 1024 independent sets from 10 independent conflicting pairs;
  // a cap of 100 must truncate, not hang or overflow.
  ConflictGraph g(20);
  for (int i = 0; i < 10; ++i) g.add_conflict(2 * i, 2 * i + 1);
  EXPECT_EQ(g.maximal_independent_sets().size(), 1024u);
  EXPECT_LE(g.maximal_independent_sets(100).size(), 100u);
}

TEST(PackedRows, DenseRandomMatchesEdgeCount) {
  RngStream rng(7, "bk-test");
  const int n = 70;
  ConflictGraph g(n);
  int edges = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (rng.bernoulli(0.5)) {
        g.add_conflict(i, j);
        ++edges;
      }
    }
  }
  EXPECT_EQ(g.edge_count(), edges);
  // Every enumerated set must be independent and maximal.
  const auto mis = g.maximal_independent_sets();
  ASSERT_FALSE(mis.empty());
  for (const auto& s : mis) {
    for (std::size_t a = 0; a < s.size(); ++a)
      for (std::size_t b = a + 1; b < s.size(); ++b)
        EXPECT_FALSE(g.conflicts(s[a], s[b]));
    for (int v = 0; v < n; ++v) {
      bool in_set = false, compatible = true;
      for (int u : s) {
        if (u == v) in_set = true;
        if (g.conflicts(u, v)) compatible = false;
      }
      EXPECT_TRUE(in_set || !compatible)
          << "set not maximal: vertex " << v << " could be added";
    }
  }
}

}  // namespace
}  // namespace meshopt
