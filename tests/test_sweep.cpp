// SweepRunner: deterministic parallel scenario execution. The acceptance
// bar for the subsystem is that 8 threads over 8 identical scenarios match
// the single-threaded results bit-for-bit.

#include "sweep/sweep_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "scenario/testbed.h"
#include "scenario/workbench.h"

namespace meshopt {
namespace {

struct ScenarioResult {
  std::uint64_t executed = 0;
  std::vector<double> throughput;

  bool operator==(const ScenarioResult& o) const {
    return executed == o.executed && throughput == o.throughput;
  }
};

ScenarioResult run_cell(const SweepJob& job) {
  Workbench wb(job.seed);
  Testbed tb(wb, TestbedConfig{.seed = 5});
  const auto links = tb.usable_links(Rate::kR11Mbps);
  std::vector<LinkRef> sel;
  for (std::size_t i = 0; i < links.size() && sel.size() < 3; i += 11)
    sel.push_back(links[i]);
  ScenarioResult r;
  r.throughput = wb.measure_backlogged(sel, 0.5);
  r.executed = wb.sim().executed_events();
  return r;
}

TEST(SweepRunner, EightThreadsMatchSerialBitForBit) {
  SweepRunner serial(1);
  SweepRunner parallel(8);
  const auto a = serial.run(8, /*master_seed=*/99, run_cell);
  const auto b = parallel.run(8, /*master_seed=*/99, run_cell);
  ASSERT_EQ(a.size(), 8u);
  ASSERT_EQ(b.size(), 8u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i] == b[i]) << "cell " << i << " diverged across threads";
  }
}

TEST(SweepRunner, PerRunStreamsAreIsolated) {
  // Same master seed, different indices: distinct streams. Same index:
  // identical stream.
  EXPECT_NE(SweepRunner::job_seed(1, 0), SweepRunner::job_seed(1, 1));
  EXPECT_NE(SweepRunner::job_seed(1, 0), SweepRunner::job_seed(2, 0));
  EXPECT_EQ(SweepRunner::job_seed(1, 3), SweepRunner::job_seed(1, 3));

  // And the per-job seeds actually produce diverging simulations.
  SweepRunner r(4);
  const auto res = r.run(4, 1234, run_cell);
  for (std::size_t i = 1; i < res.size(); ++i)
    EXPECT_FALSE(res[0] == res[i]) << "jobs 0 and " << i << " share a stream";
}

TEST(SweepRunner, ResultsInJobOrder) {
  SweepRunner r(8);
  const auto out = r.run(100, 0, [](const SweepJob& job) {
    return job.index * 10;
  });
  ASSERT_EQ(out.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[std::size_t(i)], i * 10);
}

TEST(SweepRunner, AllJobsRunOnceExactly) {
  SweepRunner r(8);
  std::vector<std::atomic<int>> hits(64);
  r.run_raw(64, 7, [&](const SweepJob& job) {
    hits[std::size_t(job.index)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(SweepRunner, ExceptionsPropagate) {
  SweepRunner r(4);
  EXPECT_THROW(r.run(16, 0,
                     [](const SweepJob& job) -> int {
                       if (job.index == 11) throw std::runtime_error("cell 11");
                       return job.index;
                     }),
               std::runtime_error);
}

TEST(SweepRunner, ThreadCountDefaultsSane) {
  EXPECT_GE(SweepRunner(0).threads(), 1);
  EXPECT_EQ(SweepRunner(5).threads(), 5);
}

// A job whose cost varies by orders of magnitude across indices: workers
// with cheap blocks drain early and must steal from the expensive block,
// so this exercises the pop/steal race paths, not just block execution.
std::uint64_t uneven_cell(const SweepJob& job) {
  RngStream rng(job.seed, "uneven");
  const int spins = (job.index % 16 == 0) ? 20000 : 10;
  std::uint64_t acc = 0;
  for (int i = 0; i < spins; ++i) acc += rng.next_u64() >> 32;
  return acc;
}

TEST(SweepRunner, StealingWorkersMatchSerialBitForBit) {
  SweepRunner serial(1);
  SweepRunner stealing(8);
  const auto a = serial.run(96, /*master_seed=*/4242, uneven_cell);
  const auto b = stealing.run(96, /*master_seed=*/4242, uneven_cell);
  EXPECT_EQ(a, b);
}

TEST(SweepRunner, PersistentPoolReusedAcrossManySweeps) {
  // The pool parks between runs; repeated runs on one runner must keep
  // producing exactly the per-seed results (and tiny sweeps — fewer jobs
  // than workers — must leave the idle workers unharmed).
  SweepRunner r(8);
  const auto expected3 = SweepRunner(1).run(3, 7, uneven_cell);
  const auto expected50 = SweepRunner(1).run(50, 8, uneven_cell);
  for (int round = 0; round < 20; ++round) {
    EXPECT_EQ(r.run(3, 7, uneven_cell), expected3) << round;
    EXPECT_EQ(r.run(50, 8, uneven_cell), expected50) << round;
  }
}

TEST(SweepRunner, ManyTinyJobsAllRunExactlyOnce) {
  SweepRunner r(8);
  std::vector<std::atomic<int>> hits(2000);
  r.run_raw(2000, 13, [&](const SweepJob& job) {
    hits[std::size_t(job.index)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(SweepRunner, ExceptionDoesNotPoisonThePool) {
  SweepRunner r(4);
  EXPECT_THROW(r.run(32, 0,
                     [](const SweepJob& job) -> int {
                       if (job.index == 11) throw std::runtime_error("cell");
                       return job.index;
                     }),
               std::runtime_error);
  // The same pool must still run clean sweeps afterwards.
  const auto out = r.run(32, 0, [](const SweepJob& job) { return job.index; });
  for (int i = 0; i < 32; ++i) EXPECT_EQ(out[std::size_t(i)], i);
}

}  // namespace
}  // namespace meshopt
