#include "util/dense_matrix.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace meshopt {
namespace {

TEST(DenseMatrix, DefaultIsEmpty) {
  DenseMatrix m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_TRUE(m.empty());
}

TEST(DenseMatrix, ShapeAndFill) {
  DenseMatrix m(3, 4, 2.5);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.stride(), 4);
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 4; ++c) EXPECT_EQ(m(r, c), 2.5);
}

TEST(DenseMatrix, RowsArePackedContiguously) {
  DenseMatrix m(3, 4);
  // Row r must start exactly cols() past row r-1 in one buffer.
  EXPECT_EQ(m.row(1), m.row(0) + 4);
  EXPECT_EQ(m.row(2), m.row(0) + 8);
  EXPECT_EQ(m.row(0), m.data());
}

TEST(DenseMatrix, InitializerList) {
  const DenseMatrix m{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 2);
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(2, 0), 5.0);
}

TEST(DenseMatrix, RaggedInitializerThrows) {
  EXPECT_THROW((DenseMatrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(DenseMatrix, NestedRoundTrip) {
  const std::vector<std::vector<double>> nested{{1, 2, 3}, {4, 5, 6}};
  const DenseMatrix m = DenseMatrix::from_nested(nested);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.to_nested(), nested);
}

TEST(DenseMatrix, RaggedNestedThrows) {
  EXPECT_THROW(DenseMatrix::from_nested({{1.0, 2.0}, {3.0}}),
               std::invalid_argument);
}

TEST(DenseMatrix, AppendRowGrowsAndZeroFills) {
  DenseMatrix m;
  m.set_cols(3);
  double* r0 = m.append_row();
  r0[1] = 7.0;
  const double src[3] = {1.0, 2.0, 3.0};
  m.append_row(src);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m(0, 0), 0.0);
  EXPECT_EQ(m(0, 1), 7.0);
  EXPECT_EQ(m(1, 2), 3.0);
}

TEST(DenseMatrix, SetColsOnNonEmptyThrows) {
  DenseMatrix m(1, 2);
  EXPECT_THROW(m.set_cols(5), std::logic_error);
}

TEST(DenseMatrix, ResizeReusesCapacity) {
  DenseMatrix m(10, 10, 1.0);
  const double* buf = m.data();
  m.resize(8, 9, 0.0);  // smaller shape: no reallocation
  EXPECT_EQ(m.data(), buf);
  EXPECT_EQ(m.rows(), 8);
  EXPECT_EQ(m.cols(), 9);
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 9; ++c) EXPECT_EQ(m(r, c), 0.0);
}

TEST(DenseMatrix, ClearKeepsColsAndCapacity) {
  DenseMatrix m(4, 5, 3.0);
  m.clear();
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 5);
  m.append_row();
  EXPECT_EQ(m.rows(), 1);
  EXPECT_EQ(m(0, 4), 0.0);
}

TEST(DenseMatrix, Equality) {
  const DenseMatrix a{{1.0, 2.0}};
  const DenseMatrix b{{1.0, 2.0}};
  const DenseMatrix c{{1.0}, {2.0}};  // same data, different shape
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace meshopt
