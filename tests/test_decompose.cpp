// Differential and regression tests of the decomposition tier
// (opt/decompose.h): on separable instances the decomposed plan must match
// the monolithic plan in objective (<= 1e-9 relative) and active-flow
// support, for all four objectives and both plan tiers; decomposed output
// must be bit-identical across pool thread counts and repeated runs; and
// per-component cache keys must keep unchurned components' planner entries
// hot when one gateway cluster's measurements move.

#include "opt/decompose.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/planner.h"
#include "scenario/topologies.h"
#include "serve/plan_service.h"
#include "sweep/controller_fleet.h"

namespace meshopt {
namespace {

CityParams small_city() {
  CityParams p;
  p.clusters = 3;
  p.links_per_cluster = 5;
  p.bridge_links = 2;
  p.flows_per_cluster = 2;
  p.seed = 7;
  return p;
}

CityParams medium_city() {
  CityParams p;  // 4 x 12 + 3 bridges = 51 links, 7 components
  p.seed = 11;
  return p;
}

PlanConfig plan_config(Objective objective, PlanTier tier) {
  PlanConfig cfg;
  cfg.optimizer.objective = objective;
  cfg.optimizer.alpha = 2.0;  // read by kAlphaFair only
  cfg.tier = tier;
  return cfg;
}

std::vector<bool> support_of(const std::vector<double>& y) {
  double max_y = 0.0;
  for (double v : y) max_y = std::max(max_y, v);
  std::vector<bool> s(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) s[i] = y[i] > 1e-6 * max_y;
  return s;
}

struct TierCase {
  Objective objective;
  PlanTier tier;
};

class DecomposeDifferential : public ::testing::TestWithParam<TierCase> {};

TEST_P(DecomposeDifferential, MatchesMonolithicOnSeparableCity) {
  const CityParams p = small_city();
  const MeasurementSnapshot snap = build_city_snapshot(p);
  const std::vector<FlowSpec> flows = city_flows(p);
  const PlanConfig cfg = plan_config(GetParam().objective, GetParam().tier);

  Planner mono(8);
  const RatePlan reference =
      mono.plan(snap, InterferenceModelKind::kLirTable, flows, cfg);
  ASSERT_TRUE(reference.ok);

  DecomposedPlanner decomposed;
  const RatePlan plan =
      decomposed.plan(snap, InterferenceModelKind::kLirTable, flows, cfg);
  ASSERT_TRUE(plan.ok);
  EXPECT_EQ(decomposed.stats().decomposed_rounds, 1u);
  EXPECT_EQ(decomposed.stats().fallback_rounds, 0u);
  // 3 cluster components are active; the 2 bridge singletons carry no
  // flows and are skipped.
  EXPECT_EQ(decomposed.stats().components_planned, 3u);
  EXPECT_EQ(decomposed.partition().count(), 5);

  EXPECT_NEAR(plan.objective_value, reference.objective_value,
              1e-9 * (std::abs(reference.objective_value) + 1.0));
  ASSERT_EQ(plan.y.size(), reference.y.size());
  EXPECT_EQ(support_of(plan.y), support_of(reference.y));
  EXPECT_EQ(plan.tier, reference.tier);
}

INSTANTIATE_TEST_SUITE_P(
    AllObjectivesBothTiers, DecomposeDifferential,
    ::testing::Values(
        TierCase{Objective::kMaxThroughput, PlanTier::kExact},
        TierCase{Objective::kMaxThroughput, PlanTier::kFast},
        TierCase{Objective::kMaxMin, PlanTier::kExact},
        TierCase{Objective::kMaxMin, PlanTier::kFast},
        TierCase{Objective::kProportionalFair, PlanTier::kExact},
        TierCase{Objective::kProportionalFair, PlanTier::kFast},
        TierCase{Objective::kAlphaFair, PlanTier::kExact},
        TierCase{Objective::kAlphaFair, PlanTier::kFast}));

TEST(Decompose, TwoHopModelAlsoSeparates) {
  // The city's neighbor relation only joins each link's own endpoints, so
  // the two-hop graph separates along the same cluster boundaries.
  const CityParams p = small_city();
  const MeasurementSnapshot snap = build_city_snapshot(p);
  const std::vector<FlowSpec> flows = city_flows(p);
  const PlanConfig cfg =
      plan_config(Objective::kProportionalFair, PlanTier::kFast);

  Planner mono(8);
  const RatePlan reference =
      mono.plan(snap, InterferenceModelKind::kTwoHop, flows, cfg);
  DecomposedPlanner decomposed;
  const RatePlan plan =
      decomposed.plan(snap, InterferenceModelKind::kTwoHop, flows, cfg);
  ASSERT_TRUE(reference.ok);
  ASSERT_TRUE(plan.ok);
  EXPECT_EQ(decomposed.stats().decomposed_rounds, 1u);
  EXPECT_NEAR(plan.objective_value, reference.objective_value,
              1e-9 * (std::abs(reference.objective_value) + 1.0));
}

TEST(Decompose, BitIdenticalAcrossPoolThreadCountsAndRuns) {
  const CityParams p = small_city();
  const std::vector<FlowSpec> flows = city_flows(p);
  const PlanConfig cfg =
      plan_config(Objective::kProportionalFair, PlanTier::kFast);

  // Three rounds with drifting capacities, planned by two independent
  // planners whose pools differ only in thread count. Every plan must be
  // bit-identical (operator== covers y, x, shapers, and all metadata).
  SweepRunner pool1(1);
  SweepRunner pool4(4);
  DecomposedPlanner a({}, &pool1);
  DecomposedPlanner b({}, &pool4);
  DecomposedPlanner serial;  // no pool at all
  for (int r = 0; r < 3; ++r) {
    MeasurementSnapshot snap = build_city_snapshot(p);
    for (SnapshotLink& l : snap.links)
      l.estimate.capacity_bps *= 1.0 + 0.01 * r;
    const RatePlan pa = a.plan(snap, InterferenceModelKind::kLirTable, flows,
                               cfg);
    const RatePlan pb = b.plan(snap, InterferenceModelKind::kLirTable, flows,
                               cfg);
    const RatePlan ps = serial.plan(snap, InterferenceModelKind::kLirTable,
                                    flows, cfg);
    ASSERT_TRUE(pa.ok);
    EXPECT_EQ(pa, pb) << "round " << r;
    EXPECT_EQ(pa, ps) << "round " << r;
  }
  EXPECT_EQ(a.stats().decomposed_rounds, 3u);
  EXPECT_EQ(a.stats().partition_rebuilds, 1u);
  EXPECT_EQ(a.stats().components_planned, 9u);  // 3 active comps x 3 rounds
}

TEST(Decompose, ComponentCachesStayHotUnderLocalChurn) {
  const CityParams p = medium_city();
  const std::vector<FlowSpec> flows = city_flows(p);
  const PlanConfig cfg =
      plan_config(Objective::kProportionalFair, PlanTier::kFast);
  MeasurementSnapshot snap = build_city_snapshot(p);

  DecomposedPlanner planner;
  ASSERT_TRUE(
      planner.plan(snap, InterferenceModelKind::kLirTable, flows, cfg).ok);
  for (int c = 0; c < p.clusters; ++c) {
    EXPECT_EQ(planner.component_planner_stats(c).misses, 1u) << c;
    EXPECT_EQ(planner.component_planner_stats(c).hits, 0u) << c;
  }

  // Capacity-only drift: every component's topology fingerprint is
  // unchanged, so every active slot hits.
  for (SnapshotLink& l : snap.links) l.estimate.capacity_bps *= 1.02;
  ASSERT_TRUE(
      planner.plan(snap, InterferenceModelKind::kLirTable, flows, cfg).ok);
  for (int c = 0; c < p.clusters; ++c)
    EXPECT_EQ(planner.component_planner_stats(c).hits, 1u) << c;

  // LIR churn inside cluster 0 only (values move, conflicts stay, so the
  // partition is unchanged): cluster 0's sub-fingerprint changes and its
  // slot misses; every other cluster's entry stays hot.
  const std::vector<int> churned = city_cluster_links(p, 0);
  const std::uint64_t fp1_before = snap.component_fingerprint(
      city_cluster_links(p, 1));
  for (int i : churned)
    for (int j : churned)
      if (i != j) snap.lir(i, j) = p.conflict_lir - 0.02;
  EXPECT_EQ(snap.component_fingerprint(city_cluster_links(p, 1)), fp1_before);
  ASSERT_TRUE(
      planner.plan(snap, InterferenceModelKind::kLirTable, flows, cfg).ok);
  EXPECT_EQ(planner.component_planner_stats(0).misses, 2u);
  EXPECT_EQ(planner.component_planner_stats(0).hits, 1u);
  for (int c = 1; c < p.clusters; ++c) {
    EXPECT_EQ(planner.component_planner_stats(c).misses, 1u) << c;
    EXPECT_EQ(planner.component_planner_stats(c).hits, 2u) << c;
  }
  EXPECT_EQ(planner.stats().partition_rebuilds, 1u);

  // Aggregated counters cover fallback + every slot.
  const PlannerStats total = planner.planner_stats_snapshot();
  EXPECT_EQ(total.misses, static_cast<std::uint64_t>(p.clusters) + 1u);
  EXPECT_EQ(total.hits, 2u * static_cast<std::uint64_t>(p.clusters) - 1u);
}

TEST(Decompose, ConnectedSnapshotFallsBackToMonolithic) {
  CityParams p = small_city();
  p.decompose_threshold_dbm = -90.0;  // below bridge RSS: one component
  const MeasurementSnapshot snap = build_city_snapshot(p);
  const std::vector<FlowSpec> flows = city_flows(p);
  const PlanConfig cfg = plan_config(Objective::kMaxMin, PlanTier::kExact);

  DecomposedPlanner decomposed;
  const RatePlan plan =
      decomposed.plan(snap, InterferenceModelKind::kLirTable, flows, cfg);
  EXPECT_EQ(decomposed.stats().fallback_rounds, 1u);
  EXPECT_EQ(decomposed.stats().fallback_connected, 1u);
  EXPECT_EQ(decomposed.stats().decomposed_rounds, 0u);

  Planner mono(8);
  const RatePlan reference =
      mono.plan(snap, InterferenceModelKind::kLirTable, flows, cfg);
  ASSERT_TRUE(reference.ok);
  EXPECT_EQ(plan, reference);  // the fallback IS the monolithic path
}

TEST(Decompose, CrossComponentFlowFallsBack) {
  const CityParams p = small_city();
  const MeasurementSnapshot snap = build_city_snapshot(p);
  std::vector<FlowSpec> flows = city_flows(p);
  // A flow whose hops touch links of clusters 0 AND 1 (the middle hop is
  // not a modeled link; the two outer hops are).
  FlowSpec straddler;
  straddler.flow_id = 999;
  const int npc = p.links_per_cluster + 1;
  straddler.path = {0, 1, npc, npc + 1};
  flows.push_back(straddler);

  DecomposedPlanner decomposed;
  const RatePlan plan = decomposed.plan(
      snap, InterferenceModelKind::kLirTable, flows,
      plan_config(Objective::kMaxThroughput, PlanTier::kExact));
  EXPECT_TRUE(plan.ok);  // planned, just monolithically
  EXPECT_EQ(decomposed.stats().fallback_cross_component, 1u);
  EXPECT_EQ(decomposed.stats().fallback_rounds, 1u);

  // A flow crossing no modeled link at all also falls back (the safety
  // cap rows are global state no component owns).
  std::vector<FlowSpec> lost = city_flows(p);
  FlowSpec none;
  none.flow_id = 1000;
  none.path = {900, 901};
  lost.push_back(none);
  (void)decomposed.plan(snap, InterferenceModelKind::kLirTable, lost,
                        plan_config(Objective::kMaxThroughput,
                                    PlanTier::kExact));
  EXPECT_EQ(decomposed.stats().fallback_cross_component, 2u);
}

TEST(Decompose, DegenerateInputsFallBack) {
  const CityParams p = small_city();
  const MeasurementSnapshot snap = build_city_snapshot(p);
  DecomposedPlanner decomposed;
  const RatePlan plan = decomposed.plan(
      snap, InterferenceModelKind::kLirTable, {},
      plan_config(Objective::kMaxThroughput, PlanTier::kExact));
  EXPECT_FALSE(plan.ok);
  EXPECT_EQ(decomposed.stats().fallback_degenerate, 1u);
}

TEST(Decompose, FleetReplayDecomposedMatchesMonolithic) {
  const CityParams p = small_city();
  const std::vector<FlowSpec> flows = city_flows(p);

  std::vector<MeasurementSnapshot> trace;
  for (int r = 0; r < 4; ++r) {
    MeasurementSnapshot snap = build_city_snapshot(p);
    for (SnapshotLink& l : snap.links)
      l.estimate.capacity_bps *= 1.0 + 0.005 * r;
    trace.push_back(std::move(snap));
  }

  ReplayCell cell;
  cell.flows = flows;
  cell.plan = plan_config(Objective::kProportionalFair, PlanTier::kFast);
  cell.interference = InterferenceModelKind::kLirTable;

  ReplayOptions mono_opts;
  ReplayOptions dec_opts;
  dec_opts.decompose = true;

  ControllerFleet fleet1(1);
  ControllerFleet fleet4(4);
  const auto mono = fleet1.replay({cell}, trace, mono_opts);
  const auto dec1 = fleet1.replay({cell}, trace, dec_opts);
  const auto dec4 = fleet4.replay({cell}, trace, dec_opts);
  ASSERT_TRUE(mono[0].ok);
  ASSERT_TRUE(dec1[0].ok);
  // Decomposed replay is bit-identical across fleet thread counts.
  EXPECT_EQ(dec1[0].plans, dec4[0].plans);
  ASSERT_EQ(dec1[0].plans.size(), mono[0].plans.size());
  for (std::size_t r = 0; r < mono[0].plans.size(); ++r) {
    EXPECT_NEAR(dec1[0].plans[r].objective_value,
                mono[0].plans[r].objective_value,
                1e-9 * (std::abs(mono[0].plans[r].objective_value) + 1.0))
        << "round " << r;
    EXPECT_EQ(support_of(dec1[0].plans[r].y), support_of(mono[0].plans[r].y))
        << "round " << r;
  }
}

TEST(Decompose, PlanServiceDecomposedTenant) {
  const CityParams p = small_city();
  const MeasurementSnapshot snap = build_city_snapshot(p);

  ServeConfig sc;
  sc.threads = 1;
  PlanService service(sc);
  TenantConfig mono;
  mono.flows = city_flows(p);
  mono.plan = plan_config(Objective::kMaxMin, PlanTier::kFast);
  mono.interference = InterferenceModelKind::kLirTable;
  TenantConfig dec = mono;
  dec.decompose = true;
  const std::uint32_t t_mono = service.add_tenant(mono);
  const std::uint32_t t_dec = service.add_tenant(dec);

  for (int r = 0; r < 2; ++r) {
    ASSERT_TRUE(submit_accepted(service.submit(t_mono, snap, r).status));
    ASSERT_TRUE(submit_accepted(service.submit(t_dec, snap, r).status));
    const ServeBatchReport batch = service.run_batch(r);
    ASSERT_EQ(batch.served.size(), 2u);
  }

  const RatePlan& a = service.last_plan(t_mono);
  const RatePlan& b = service.last_plan(t_dec);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_NEAR(b.objective_value, a.objective_value,
              1e-9 * (std::abs(a.objective_value) + 1.0));

  const TenantCounters& tc = service.metrics().tenant(t_dec);
  EXPECT_EQ(tc.decomposed_rounds, 2u);
  EXPECT_EQ(tc.components_planned, 6u);  // 3 active comps x 2 rounds
  EXPECT_GT(tc.cache_hits, 0u);          // round 2 hit every active slot
  const TenantCounters& mc = service.metrics().tenant(t_mono);
  EXPECT_EQ(mc.decomposed_rounds, 0u);
}

}  // namespace
}  // namespace meshopt
