#include "opt/column_gen.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "model/conflict_graph.h"
#include "model/feasibility.h"
#include "opt/network_optimizer.h"
#include "opt/simplex.h"
#include "util/rng.h"

namespace meshopt {
namespace {

ConflictGraph random_graph(int n, double p, RngStream& rng) {
  ConflictGraph g(n);
  for (int a = 0; a < n; ++a)
    for (int b = a + 1; b < n; ++b)
      if (rng.bernoulli(p)) g.add_conflict(a, b);
  return g;
}

bool is_independent(const ConflictGraph& g, const std::vector<int>& links) {
  for (std::size_t i = 0; i < links.size(); ++i)
    for (std::size_t j = i + 1; j < links.size(); ++j)
      if (g.conflicts(links[i], links[j])) return false;
  return true;
}

bool is_maximal(const ConflictGraph& g, const std::vector<int>& links) {
  if (!is_independent(g, links)) return false;
  std::set<int> members(links.begin(), links.end());
  for (int v = 0; v < g.size(); ++v) {
    if (members.count(v) != 0) continue;
    bool blocked = false;
    for (int m : links)
      if (g.conflicts(v, m)) blocked = true;
    if (!blocked) return false;  // v extends the set: not maximal
  }
  return true;
}

std::vector<int> bits_to_links(const std::vector<std::uint64_t>& bits,
                               int n) {
  std::vector<int> links;
  for (int v = 0; v < n; ++v)
    if ((bits[static_cast<std::size_t>(v >> 6)] >> (v & 63) & 1) != 0)
      links.push_back(v);
  return links;
}

/// Brute-force MWIS over all 2^n subsets (n <= ~16).
double brute_force_mwis(const ConflictGraph& g,
                        const std::vector<double>& w) {
  const int n = g.size();
  double best = 0.0;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    double acc = 0.0;
    bool ok = true;
    for (int a = 0; a < n && ok; ++a) {
      if ((mask >> a & 1) == 0) continue;
      acc += w[static_cast<std::size_t>(a)];
      for (int b = a + 1; b < n && ok; ++b)
        if ((mask >> b & 1) != 0 && g.conflicts(a, b)) ok = false;
    }
    if (ok) best = std::max(best, acc);
  }
  return best;
}

// ---------------------------------------------------------------------------
// Pricing oracle: exact MWIS search
// ---------------------------------------------------------------------------

TEST(MaxWeightIndependentSet, MatchesBruteForceOnRandomGraphs) {
  RngStream rng(17, "mwis-brute");
  for (int trial = 0; trial < 60; ++trial) {
    const int n = rng.uniform_int(4, 14);
    const double p = rng.uniform(0.1, 0.9);
    ConflictGraph g = random_graph(n, p, rng);
    std::vector<double> w(static_cast<std::size_t>(n));
    for (double& x : w) x = rng.uniform(-0.5, 2.0);  // some negatives/zeros

    std::vector<std::uint64_t> bits;
    const double got = max_weight_independent_set(g, w, bits);
    const double want = brute_force_mwis(g, w);
    EXPECT_NEAR(got, want, 1e-12) << "trial " << trial;

    // The returned set is independent and its weight matches the claim.
    const std::vector<int> links = bits_to_links(bits, n);
    EXPECT_TRUE(is_independent(g, links));
    double sum = 0.0;
    for (int v : links) sum += w[static_cast<std::size_t>(v)];
    EXPECT_NEAR(sum, got, 1e-12);
  }
}

TEST(MaxWeightIndependentSet, DeterministicAcrossRepeatedCalls) {
  RngStream rng(23, "mwis-det");
  ConflictGraph g = random_graph(48, 0.4, rng);
  std::vector<double> w(48);
  for (double& x : w) x = rng.uniform(0.0, 1.0);
  std::vector<std::uint64_t> a, b;
  const double wa = max_weight_independent_set(g, w, a);
  const double wb = max_weight_independent_set(g, w, b);
  EXPECT_EQ(a, b);
  EXPECT_EQ(wa, wb);
}

TEST(MaxWeightIndependentSet, NodeCapTruncatesButStillReturnsASet) {
  RngStream rng(29, "mwis-cap");
  ConflictGraph g = random_graph(40, 0.3, rng);
  std::vector<double> w(40);
  for (double& x : w) x = rng.uniform(0.5, 1.0);
  std::vector<std::uint64_t> bits;
  std::uint64_t nodes = 0;
  bool truncated = false;
  const double got =
      max_weight_independent_set(g, w, bits, /*node_cap=*/8, &nodes, &truncated);
  EXPECT_TRUE(truncated);
  EXPECT_TRUE(is_independent(g, bits_to_links(bits, 40)));
  EXPECT_GE(got, 0.0);
}

TEST(ExtendToMaximal, ProducesMaximalSupersets) {
  RngStream rng(31, "extend");
  for (int trial = 0; trial < 40; ++trial) {
    const int n = rng.uniform_int(3, 30);
    ConflictGraph g = random_graph(n, rng.uniform(0.1, 0.8), rng);
    // Start from a random independent set (grown greedily over a random
    // candidate order to keep the test independent of the implementation).
    std::vector<std::uint64_t> bits(static_cast<std::size_t>(g.row_words()),
                                    0);
    const int v0 = rng.uniform_int(0, n - 1);
    bits[static_cast<std::size_t>(v0 >> 6)] |= std::uint64_t{1} << (v0 & 63);
    const std::vector<int> before = bits_to_links(bits, n);
    extend_to_maximal_independent_set(g, bits);
    const std::vector<int> after = bits_to_links(bits, n);
    EXPECT_TRUE(is_maximal(g, after)) << "trial " << trial;
    EXPECT_TRUE(std::includes(after.begin(), after.end(), before.begin(),
                              before.end()));
  }
}

// ---------------------------------------------------------------------------
// Pricing-oracle admissions: property/fuzz over random conflict graphs
// ---------------------------------------------------------------------------

struct FuzzInstance {
  ConflictGraph graph = ConflictGraph(0);
  ColumnGenInput in;
};

FuzzInstance random_instance(RngStream& rng, int links, int flows) {
  FuzzInstance inst;
  inst.graph = random_graph(links, rng.uniform(0.2, 0.7), rng);
  inst.in.routing = DenseMatrix(links, flows, 0.0);
  for (int f = 0; f < flows; ++f) {
    // Each flow crosses a random contiguous span of links.
    const int lo = rng.uniform_int(0, links - 1);
    const int hi = rng.uniform_int(lo, links - 1);
    for (int l = lo; l <= hi; ++l) inst.in.routing(l, f) = 1.0;
  }
  inst.in.capacities.resize(static_cast<std::size_t>(links));
  for (double& c : inst.in.capacities) c = rng.uniform(0.5e6, 5e6);
  return inst;
}

TEST(ColumnGenPricing, AdmissionsAreGenuineMaximalSetsWithPositiveReducedCost) {
  RngStream rng(41, "pricing-fuzz");
  const Objective objectives[] = {Objective::kMaxThroughput,
                                  Objective::kProportionalFair,
                                  Objective::kMaxMin};
  for (int trial = 0; trial < 15; ++trial) {
    FuzzInstance inst =
        random_instance(rng, rng.uniform_int(10, 28), rng.uniform_int(1, 4));
    inst.in.conflicts = &inst.graph;
    for (Objective obj : objectives) {
      OptimizerConfig cfg;
      cfg.objective = obj;
      ColumnGenOptimizer cg(cfg);
      // Track per-solve admissions: every admitted column must be a new,
      // genuine, maximal independent set with positive reduced cost —
      // and no column may be admitted twice (termination).
      std::set<std::vector<int>> admitted;
      cg.on_admit = [&](const ColumnAdmission& a) {
        EXPECT_GT(a.reduced_cost, 0.0);
        EXPECT_TRUE(is_maximal(inst.graph, a.links));
        EXPECT_TRUE(admitted.insert(a.links).second)
            << "column admitted twice in one solve";
        EXPECT_GE(a.pricing_round, 1);
      };
      const OptimizerResult r = cg.solve(inst.in);
      EXPECT_TRUE(r.ok);
      EXPECT_EQ(cg.stats().oracle_truncated, 0u);
      // Working-set bookkeeping is consistent.
      EXPECT_EQ(r.columns_used, cg.columns().count());
      EXPECT_GE(r.pricing_rounds, 0);
    }
  }
}

TEST(ColumnGenPricing, WorkingSetColumnsAreDistinctMaximalSets) {
  RngStream rng(43, "workingset");
  FuzzInstance inst = random_instance(rng, 24, 3);
  inst.in.conflicts = &inst.graph;
  OptimizerConfig cfg;
  cfg.objective = Objective::kProportionalFair;
  ColumnGenOptimizer cg(cfg);
  ASSERT_TRUE(cg.solve(inst.in).ok);
  const MisRowSet& cols = cg.columns();
  std::set<std::vector<int>> seen;
  for (int k = 0; k < cols.count(); ++k) {
    std::vector<std::uint64_t> bits(cols.row(k),
                                    cols.row(k) + cols.row_words());
    const std::vector<int> links = bits_to_links(bits, inst.graph.size());
    EXPECT_TRUE(is_maximal(inst.graph, links)) << "column " << k;
    EXPECT_TRUE(seen.insert(links).second) << "duplicate working column";
  }
}

// ---------------------------------------------------------------------------
// Fast tier vs exact optimizer at the opt/ layer
// ---------------------------------------------------------------------------

TEST(ColumnGenOptimizer, ObjectiveMatchesExactSolverOnRandomInstances) {
  RngStream rng(47, "cg-vs-exact");
  for (int trial = 0; trial < 10; ++trial) {
    FuzzInstance inst =
        random_instance(rng, rng.uniform_int(8, 22), rng.uniform_int(1, 3));
    inst.in.conflicts = &inst.graph;

    OptimizerInput exact_in;
    exact_in.routing = inst.in.routing;
    exact_in.extreme_points =
        build_extreme_point_matrix(inst.in.capacities, inst.graph);

    const Objective objectives[] = {Objective::kMaxThroughput,
                                    Objective::kMaxMin,
                                    Objective::kProportionalFair};
    for (Objective obj : objectives) {
      OptimizerConfig cfg;
      cfg.objective = obj;
      const OptimizerResult exact = optimize_rates(exact_in, cfg);
      ColumnGenOptimizer cg(cfg);
      const OptimizerResult fast = cg.solve(inst.in);
      ASSERT_EQ(exact.ok, fast.ok) << "trial " << trial;
      if (!exact.ok) continue;
      const double tol =
          1e-6 * std::max(1.0, std::abs(exact.objective_value));
      EXPECT_NEAR(fast.objective_value, exact.objective_value, tol)
          << "trial " << trial << " objective " << static_cast<int>(obj);
      // The restricted master should finish well below full K.
      EXPECT_LE(fast.columns_used, exact_in.extreme_points.rows());
    }
  }
}

TEST(ColumnGenOptimizer, WarmSolvesStayConsistentUnderCapacityDrift) {
  RngStream rng(53, "cg-drift");
  FuzzInstance inst = random_instance(rng, 20, 3);
  inst.in.conflicts = &inst.graph;
  OptimizerConfig cfg;
  cfg.objective = Objective::kMaxThroughput;
  ColumnGenOptimizer warm(cfg);
  for (int round = 0; round < 6; ++round) {
    for (double& c : inst.in.capacities) c *= rng.uniform(0.9, 1.1);
    OptimizerInput exact_in;
    exact_in.routing = inst.in.routing;
    exact_in.extreme_points =
        build_extreme_point_matrix(inst.in.capacities, inst.graph);
    const OptimizerResult exact = optimize_rates(exact_in, cfg);
    const OptimizerResult fast = warm.solve(inst.in);
    ASSERT_TRUE(exact.ok && fast.ok);
    const double tol = 1e-6 * std::max(1.0, std::abs(exact.objective_value));
    EXPECT_NEAR(fast.objective_value, exact.objective_value, tol)
        << "round " << round;
  }
  // Warm state paid off: far fewer pricing rounds than a cold re-run of
  // every round would need, and at least one warm basis start.
  EXPECT_GE(warm.stats().warm_starts, 1u);
}

TEST(ColumnGenOptimizer, ResetDropsWarmState) {
  RngStream rng(59, "cg-reset");
  FuzzInstance inst = random_instance(rng, 16, 2);
  inst.in.conflicts = &inst.graph;
  ColumnGenOptimizer cg;
  ASSERT_TRUE(cg.solve(inst.in).ok);
  EXPECT_GT(cg.columns().count(), 0);
  cg.reset();
  EXPECT_EQ(cg.columns().count(), 0);
  ASSERT_TRUE(cg.solve(inst.in).ok);  // re-seeds and re-prices cleanly
}

// ---------------------------------------------------------------------------
// LpSolver column-add / warm-basis / duals hooks
// ---------------------------------------------------------------------------

LpProblem random_lp(RngStream& rng, int vars, int rows) {
  LpProblem lp;
  lp.num_vars = vars;
  lp.objective.resize(static_cast<std::size_t>(vars));
  for (double& c : lp.objective) c = rng.uniform(0.1, 2.0);
  for (int i = 0; i < rows; ++i) {
    double* row = lp.add_row(Relation::kLe, rng.uniform(1.0, 5.0));
    for (int j = 0; j < vars; ++j) row[j] = rng.uniform(0.0, 1.0);
  }
  return lp;
}

TEST(LpSolverHooks, ResolveWithAddedColumnsMatchesColdSolve) {
  RngStream rng(61, "lp-addcols");
  for (int trial = 0; trial < 30; ++trial) {
    LpProblem lp = random_lp(rng, rng.uniform_int(2, 6), rng.uniform_int(2, 5));
    LpSolver solver;
    ASSERT_EQ(solver.solve(lp).status, LpStatus::kOptimal);

    const int added = rng.uniform_int(1, 3);
    const int old_vars = lp.num_vars;
    lp.append_vars(added);
    for (int j = old_vars; j < lp.num_vars; ++j) {
      lp.objective[static_cast<std::size_t>(j)] = rng.uniform(0.1, 3.0);
      for (int i = 0; i < lp.num_constraints(); ++i)
        lp.coeffs(i, j) = rng.uniform(0.0, 1.0);
    }
    const LpSolution warm = solver.resolve_with_added_columns(lp);
    const LpSolution cold = solve_lp(lp);
    ASSERT_EQ(warm.status, cold.status) << "trial " << trial;
    ASSERT_EQ(warm.status, LpStatus::kOptimal);
    EXPECT_NEAR(warm.objective, cold.objective, 1e-9 * (1.0 + std::abs(cold.objective)))
        << "trial " << trial;
    // The warm solution is feasible for the widened problem.
    for (int i = 0; i < lp.num_constraints(); ++i) {
      double lhs = 0.0;
      for (int j = 0; j < lp.num_vars; ++j)
        lhs += lp.coeffs(i, j) * warm.x[static_cast<std::size_t>(j)];
      EXPECT_LE(lhs, lp.rhs[static_cast<std::size_t>(i)] + 1e-7);
    }
  }
}

TEST(LpSolverHooks, ResolveWithAddedColumnsCanGrowRepeatedly) {
  // The column-generation pattern: append one column, re-solve, repeat.
  RngStream rng(67, "lp-repeat");
  LpProblem lp = random_lp(rng, 3, 4);
  LpSolver solver;
  ASSERT_EQ(solver.solve(lp).status, LpStatus::kOptimal);
  for (int round = 0; round < 5; ++round) {
    lp.append_vars(1);
    const int j = lp.num_vars - 1;
    lp.objective[static_cast<std::size_t>(j)] = rng.uniform(0.5, 3.0);
    for (int i = 0; i < lp.num_constraints(); ++i)
      lp.coeffs(i, j) = rng.uniform(0.0, 1.0);
    const LpSolution warm = solver.resolve_with_added_columns(lp);
    const LpSolution cold = solve_lp(lp);
    ASSERT_EQ(warm.status, LpStatus::kOptimal);
    EXPECT_NEAR(warm.objective, cold.objective,
                1e-9 * (1.0 + std::abs(cold.objective)))
        << "round " << round;
  }
}

TEST(LpSolverHooks, SolveWithBasisMatchesColdUnderDrift) {
  RngStream rng(71, "lp-basis");
  for (int trial = 0; trial < 30; ++trial) {
    LpProblem lp = random_lp(rng, rng.uniform_int(2, 6), rng.uniform_int(2, 5));
    LpSolver solver;
    ASSERT_EQ(solver.solve(lp).status, LpStatus::kOptimal);
    const std::vector<int> hint = solver.basis();

    // Drift every coefficient slightly (same shape, new numbers).
    for (int i = 0; i < lp.num_constraints(); ++i)
      for (int j = 0; j < lp.num_vars; ++j)
        lp.coeffs(i, j) *= rng.uniform(0.95, 1.05);
    for (double& b : lp.rhs) b *= rng.uniform(0.95, 1.05);

    LpSolver warm_solver;
    const LpSolution warm = warm_solver.solve_with_basis(lp, hint);
    const LpSolution cold = solve_lp(lp);
    ASSERT_EQ(warm.status, cold.status);
    if (warm.status == LpStatus::kOptimal)
      EXPECT_NEAR(warm.objective, cold.objective,
                  1e-9 * (1.0 + std::abs(cold.objective)))
          << "trial " << trial;
  }
}

TEST(LpSolverHooks, SolveWithBasisFallsBackOnGarbageHints) {
  RngStream rng(73, "lp-garbage");
  LpProblem lp = random_lp(rng, 4, 3);
  const LpSolution cold = solve_lp(lp);
  ASSERT_EQ(cold.status, LpStatus::kOptimal);
  LpSolver solver;
  // Out-of-range and duplicate hints must fall back, not crash or skew.
  const LpSolution bad1 = solver.solve_with_basis(lp, {999, -1, 0});
  EXPECT_EQ(bad1.status, LpStatus::kOptimal);
  EXPECT_NEAR(bad1.objective, cold.objective, 1e-9);
  const LpSolution bad2 = solver.solve_with_basis(lp, {0, 0, 0});
  EXPECT_EQ(bad2.status, LpStatus::kOptimal);
  EXPECT_NEAR(bad2.objective, cold.objective, 1e-9);
  const LpSolution bad3 = solver.solve_with_basis(lp, {0, 1});  // wrong size
  EXPECT_EQ(bad3.status, LpStatus::kOptimal);
  EXPECT_NEAR(bad3.objective, cold.objective, 1e-9);
}

TEST(LpSolverHooks, DualsSatisfyStrongDualityAndComplementarySlackness) {
  // max 3x + 2y s.t. x + y <= 4, x <= 2, y <= 3: optimum (2, 2), obj 10,
  // duals (2, 1, 0).
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {3, 2};
  lp.add_constraint({1, 1}, Relation::kLe, 4);
  lp.add_constraint({1, 0}, Relation::kLe, 2);
  lp.add_constraint({0, 1}, Relation::kLe, 3);
  LpSolver solver;
  const LpSolution sol = solver.solve(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 10.0, 1e-9);
  std::vector<double> duals;
  solver.duals(duals);
  ASSERT_EQ(duals.size(), 3u);
  EXPECT_NEAR(duals[0], 2.0, 1e-9);
  EXPECT_NEAR(duals[1], 1.0, 1e-9);
  EXPECT_NEAR(duals[2], 0.0, 1e-9);
  // Strong duality: lambda . b == optimal objective.
  EXPECT_NEAR(duals[0] * 4 + duals[1] * 2 + duals[2] * 3, sol.objective,
              1e-9);
}

TEST(LpSolverHooks, DualsHonorNegativeRhsNormalization) {
  // max x s.t. -x >= -2 (i.e. x <= 2 after load()'s sign flip): the dual
  // must come back in the CALLER's orientation, lambda.b == 2.
  LpProblem lp;
  lp.num_vars = 1;
  lp.objective = {1};
  lp.add_constraint({-1}, Relation::kGe, -2);
  LpSolver solver;
  const LpSolution sol = solver.solve(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 2.0, 1e-9);
  std::vector<double> duals;
  solver.duals(duals);
  ASSERT_EQ(duals.size(), 1u);
  EXPECT_NEAR(duals[0] * -2.0, 2.0, 1e-9);
}

TEST(LpSolverHooks, RandomDualsSatisfyStrongDuality) {
  RngStream rng(79, "lp-duals");
  for (int trial = 0; trial < 30; ++trial) {
    LpProblem lp = random_lp(rng, rng.uniform_int(2, 6), rng.uniform_int(2, 6));
    LpSolver solver;
    const LpSolution sol = solver.solve(lp);
    ASSERT_EQ(sol.status, LpStatus::kOptimal);
    std::vector<double> duals;
    solver.duals(duals);
    double dual_obj = 0.0;
    for (int i = 0; i < lp.num_constraints(); ++i)
      dual_obj += duals[static_cast<std::size_t>(i)] *
                  lp.rhs[static_cast<std::size_t>(i)];
    EXPECT_NEAR(dual_obj, sol.objective,
                1e-8 * (1.0 + std::abs(sol.objective)))
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace meshopt
