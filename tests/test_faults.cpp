// Fault-injection plane tests: script ordering and generator determinism,
// FaultEngine per-round mechanics (corruption, dropout, stale replay,
// partial snapshots, apply-failure arming), fault_rounds composition, the
// 200-round fault-injected fleet acceptance run (no uncaught exceptions,
// FALLBACK entered and exited, bit-identical across 1 vs 4 threads and
// repeated runs), cell/segment fault isolation, and guarded replay.

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/controller.h"
#include "core/snapshot_source.h"
#include "scenario/dynamics.h"
#include "scenario/faults.h"
#include "scenario/topologies.h"
#include "sweep/controller_fleet.h"
#include "util/rng.h"

namespace meshopt {
namespace {

SnapshotLink fault_link(NodeId src, NodeId dst, double capacity_bps) {
  SnapshotLink l;
  l.src = src;
  l.dst = dst;
  l.rate = Rate::kR11Mbps;
  l.estimate.p_data = 0.1;
  l.estimate.p_ack = 0.05;
  l.estimate.p_link = 0.1;
  l.estimate.capacity_bps = capacity_bps;
  return l;
}

/// A deterministic 3-link chain trace with per-round capacity motion.
std::vector<MeasurementSnapshot> synthetic_trace(int rounds) {
  std::vector<MeasurementSnapshot> out;
  out.reserve(static_cast<std::size_t>(rounds));
  for (int r = 0; r < rounds; ++r) {
    MeasurementSnapshot snap;
    const double wiggle = 1e5 * r;
    snap.links = {fault_link(0, 1, 4e6 + wiggle),
                  fault_link(1, 2, 3e6 + wiggle),
                  fault_link(3, 2, 5e6 + wiggle)};
    snap.neighbors = {{0, 1}, {1, 2}, {2, 3}};
    out.push_back(std::move(snap));
  }
  return out;
}

std::vector<FlowSpec> replay_flows() {
  FlowSpec far;
  far.flow_id = 0;
  far.path = {0, 1, 2};
  FlowSpec near;
  near.flow_id = 1;
  near.path = {3, 2};
  return {far, near};
}

TEST(FaultScript, AddMergeKeepRoundOrderAndHorizon) {
  FaultScript script;
  script.add({5, FaultKind::kDropWindow, 0, 1, 0.0})
      .add({1, FaultKind::kCorruptLoss, 2, 1, 1.5});
  ASSERT_EQ(script.events.size(), 2u);
  EXPECT_EQ(script.events[0].kind, FaultKind::kCorruptLoss);
  EXPECT_EQ(script.horizon(), 5);
  EXPECT_EQ(FaultScript{}.horizon(), -1);

  FaultScript other;
  other.add({3, FaultKind::kApplyFailure, 0, 1, 0.0});
  script.merge(other);
  ASSERT_EQ(script.events.size(), 3u);
  EXPECT_EQ(script.events[1].round, 3);
}

TEST(FaultGenerators, DeterministicInSeedAndWellFormed) {
  const FaultScript a =
      loss_corruption_faults(60, 0.3, 2, RngStream(5, "loss"));
  const FaultScript b =
      loss_corruption_faults(60, 0.3, 2, RngStream(5, "loss"));
  ASSERT_EQ(a.events.size(), b.events.size());
  ASSERT_GT(a.events.size(), 0u);
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].round, b.events[i].round);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.events[i].value),
              std::bit_cast<std::uint64_t>(b.events[i].value));
    // Every poison is from the menu the validator must catch.
    const double v = a.events[i].value;
    EXPECT_TRUE(std::isnan(v) || std::isinf(v) || v == -0.25 || v == 1.5);
    EXPECT_GE(a.events[i].link, 0);
    EXPECT_LE(a.events[i].link, 2);
  }

  // A different seed moves the event set; other generators stay in range.
  const FaultScript c =
      loss_corruption_faults(60, 0.3, 2, RngStream(6, "loss"));
  EXPECT_NE(a.events.size() == c.events.size() &&
                a.events[0].round == c.events[0].round &&
                std::bit_cast<std::uint64_t>(a.events[0].value) ==
                    std::bit_cast<std::uint64_t>(c.events[0].value),
            true);

  const FaultScript stale =
      stale_replay_faults(100, 0.05, 4, RngStream(7, "stale"));
  for (const FaultEvent& e : stale.events) {
    EXPECT_EQ(e.kind, FaultKind::kStaleReplay);
    EXPECT_LT(e.round, 100);
  }
  const FaultScript cap =
      capacity_outlier_faults(60, 0.4, 2, RngStream(8, "cap"));
  ASSERT_GT(cap.events.size(), 0u);
  for (const FaultEvent& e : cap.events)
    EXPECT_TRUE(e.value < 0.0 || e.value >= 0.5e12);
}

TEST(FaultEngine, AppliesEachKindAtItsScriptedRound) {
  const std::vector<MeasurementSnapshot> trace = synthetic_trace(6);
  FaultScript script;
  script.add({0, FaultKind::kStaleReplay, 0, 1, 0.0})  // no prior: dropout
      .add({1, FaultKind::kCorruptLoss, 0, 1,
            std::numeric_limits<double>::quiet_NaN()})
      .add({2, FaultKind::kDropWindow, 0, 1, 0.0})
      .add({3, FaultKind::kStaleReplay, 0, 1, 0.0})
      .add({4, FaultKind::kPartialSnapshot, 1, 2, 0.0})
      .add({5, FaultKind::kApplyFailure, 0, 1, 0.0});

  TraceSource base(&trace);
  FaultEngine engine(&base, script);
  std::vector<MeasurementSnapshot> seen;
  MeasurementSnapshot snap;
  std::vector<bool> apply_faults;
  while (engine.next(snap)) {
    seen.push_back(snap);
    apply_faults.push_back(engine.apply_fault_now());
  }
  ASSERT_EQ(seen.size(), 6u);

  // Round 0: stale replay with nothing to replay degrades to a dropout.
  EXPECT_TRUE(seen[0].links.empty());
  // Round 1: loss fields poisoned on link 0, everything else untouched.
  EXPECT_TRUE(std::isnan(seen[1].links[0].estimate.p_data));
  EXPECT_TRUE(std::isnan(seen[1].links[0].estimate.p_ack));
  EXPECT_EQ(seen[1].links[1], trace[1].links[1]);
  // Round 2: dropped window.
  EXPECT_TRUE(seen[2].links.empty());
  // Round 3: stale replay delivers round 2's CLEAN snapshot (the drop
  // corrupted the delivery, not the stash).
  EXPECT_EQ(seen[3], trace[2]);
  // Round 4: two links erased.
  EXPECT_EQ(seen[4].links.size(), 1u);
  // Round 5: snapshot untouched; the apply path is armed for this round
  // only.
  EXPECT_EQ(seen[5], trace[5]);
  const std::vector<bool> want_apply = {false, false, false,
                                        false, false, true};
  EXPECT_EQ(apply_faults, want_apply);
  EXPECT_EQ(engine.rounds(), 6);
  EXPECT_EQ(engine.faults_injected(), 6);

  // fault_rounds is the same walk as a value.
  const std::vector<MeasurementSnapshot> faulted =
      fault_rounds(trace, script);
  ASSERT_EQ(faulted.size(), seen.size());
  for (std::size_t i = 0; i < seen.size(); ++i) {
    if (i == 1) continue;  // NaN-poisoned round: == would be false
    EXPECT_EQ(faulted[i], seen[i]) << "round " << i;
  }
  EXPECT_TRUE(std::isnan(faulted[1].links[0].estimate.p_data));
}

ControllerConfig fault_config() {
  ControllerConfig cfg;
  cfg.probe_period_s = 0.25;
  cfg.probe_window = 20;
  cfg.optimizer.objective = Objective::kProportionalFair;
  return cfg;
}

std::vector<FleetCell> fault_study_cells(int rounds) {
  std::vector<FleetCell> cells;
  for (int v = 0; v < 2; ++v) {
    FleetCell cell;
    cell.build_topology = [](Workbench& wb) { build_gateway_chain(wb); };
    cell.flows = {FleetFlow{{0, 1, 2}}, FleetFlow{{3, 2}}};
    cell.controller = fault_config();
    cell.rounds = rounds;
    // Churn underneath: loss drift plus a mid-run flap of node 3.
    cell.dynamics = [rounds](std::uint64_t seed) {
      const double horizon = 5.0 * rounds;
      DynamicsScript script = random_walk_loss_drift(
          0, 1, Rate::kR1Mbps, 0.02, 0.01, 25.0, horizon,
          RngStream(seed, "drift"));
      script.merge(node_flap(3, 0.3 * horizon, 0.6 * horizon));
      return script;
    };
    // Faults on top: dropouts, NaN/Inf loss corruption, stale replays.
    cell.faults = [rounds](std::uint64_t seed) {
      FaultScript script =
          window_dropout_faults(rounds, 0.05, RngStream(seed, "drop"));
      script.merge(
          loss_corruption_faults(rounds, 0.08, 2, RngStream(seed, "loss")));
      script.merge(
          stale_replay_faults(rounds, 0.03, 3, RngStream(seed, "stale")));
      return script;
    };
    cells.push_back(std::move(cell));
  }
  return cells;
}

TEST(FaultFleet, TwoHundredRoundFaultRunSurvivesAndIsBitIdentical) {
  // The PR's acceptance run: 200 fault-injected rounds (dropout + NaN
  // corruption + stale snapshots) over churn. Must complete without an
  // uncaught exception, enter AND exit FALLBACK at script-determined
  // rounds, and be bit-identical across thread counts and repeated runs.
  ControllerFleet serial(1);
  ControllerFleet parallel(4);
  const auto a = serial.run(fault_study_cells(200), 911);
  const auto b = parallel.run(fault_study_cells(200), 911);
  const auto again = parallel.run(fault_study_cells(200), 911);
  ASSERT_EQ(a.size(), 2u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].error.empty()) << a[i].error;
    // The faulted loop genuinely cycled through the state machine.
    EXPECT_EQ(a[i].health.rounds, 200u);
    EXPECT_GT(a[i].health.fallback_entries, 0u) << "cell " << i;
    EXPECT_GT(a[i].health.recoveries, 0u) << "cell " << i;
    EXPECT_GT(a[i].health.snapshots_repaired, 0u);
    EXPECT_GT(a[i].health.healthy_rounds, 0u);
    // Bit-identity: 1 vs 4 threads, and run vs repeated run.
    EXPECT_EQ(a[i].health, b[i].health) << "cell " << i;
    EXPECT_EQ(a[i].health_state, b[i].health_state);
    EXPECT_EQ(a[i].snapshot, b[i].snapshot) << "cell " << i;
    EXPECT_EQ(a[i].plan, b[i].plan) << "cell " << i;
    EXPECT_EQ(a[i].ok, b[i].ok);
    EXPECT_EQ(b[i].health, again[i].health);
    EXPECT_EQ(b[i].snapshot, again[i].snapshot);
    EXPECT_EQ(b[i].plan, again[i].plan);
  }
}

TEST(FaultFleet, ScriptedApplyFailuresFallBackAndRecover) {
  FleetCell cell;
  cell.build_topology = [](Workbench& wb) { build_gateway_chain(wb); };
  cell.flows = {FleetFlow{{0, 1, 2}, Rate::kR1Mbps, false, 8e5},
                FleetFlow{{3, 2}, Rate::kR1Mbps, false, 8e5}};
  cell.controller = fault_config();
  cell.rounds = 8;
  cell.faults = [](std::uint64_t) {
    FaultScript script;
    script.add({2, FaultKind::kApplyFailure, 0, 1, 0.0});
    return script;
  };
  ControllerFleet fleet(2);
  const auto results = fleet.run({cell}, 313);
  ASSERT_EQ(results.size(), 1u);
  const FleetResult& r = results[0];
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_GT(r.health.apply_failures, 0u);
  EXPECT_EQ(r.health.fallback_entries, 1u);
  EXPECT_EQ(r.health.recoveries, 1u);
  EXPECT_EQ(r.health_state, HealthState::kHealthy);  // healed by round 8
  EXPECT_TRUE(r.ok);
}

TEST(FaultFleet, ThrowingCellIsIsolatedFromThePool) {
  auto make_cells = [] {
    std::vector<FleetCell> cells(3);
    for (FleetCell& cell : cells) {
      cell.build_topology = [](Workbench& wb) { build_gateway_chain(wb); };
      cell.flows = {FleetFlow{{0, 1, 2}}};
      cell.controller = fault_config();
      cell.rounds = 1;
    }
    cells[1].flows = {FleetFlow{{0}}};  // invalid: throws in setup
    return cells;
  };
  ControllerFleet serial(1);
  ControllerFleet parallel(4);
  const auto a = serial.run(make_cells(), 99);
  const auto b = parallel.run(make_cells(), 99);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_TRUE(a[0].error.empty());
  EXPECT_TRUE(a[0].ok);
  EXPECT_FALSE(a[1].error.empty());
  EXPECT_FALSE(a[1].ok);
  EXPECT_TRUE(a[2].error.empty());
  EXPECT_TRUE(a[2].ok);
  // Error strings are deterministic: bit-identical across thread counts.
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].error, b[i].error) << "cell " << i;
    EXPECT_EQ(a[i].plan, b[i].plan) << "cell " << i;
  }
}

TEST(FaultReplay, GuardedReplaySurvivesAFaultedTraceAndShardsIdentically) {
  const std::vector<MeasurementSnapshot> clean = synthetic_trace(20);
  FaultScript script =
      loss_corruption_faults(20, 0.3, 2, RngStream(17, "loss"));
  script.merge(window_dropout_faults(20, 0.15, RngStream(17, "drop")));
  const std::vector<MeasurementSnapshot> faulted =
      fault_rounds(clean, script);

  ReplayCell cell;
  cell.flows = replay_flows();
  cell.plan.optimizer.objective = Objective::kProportionalFair;
  cell.guarded = true;

  ControllerFleet serial(1);
  ControllerFleet parallel(4);
  ReplayOptions whole;
  ReplayOptions sharded;
  sharded.segment_rounds = 3;
  const auto one = serial.replay({cell}, faulted, whole);
  const auto many = parallel.replay({cell}, faulted, sharded);
  ASSERT_EQ(one.size(), 1u);
  ASSERT_EQ(one[0].plans.size(), 20u);
  EXPECT_TRUE(one[0].error.empty());

  bool any_rejected = false;
  bool any_planned = false;
  for (std::size_t r = 0; r < one[0].plans.size(); ++r) {
    const RatePlan& plan = one[0].plans[r];
    if (!plan.ok) {
      any_rejected = true;
      continue;
    }
    any_planned = true;
    // Guarded plans never carry a poisoned number to the shapers.
    for (const double y : plan.y) EXPECT_TRUE(std::isfinite(y));
    for (const double x : plan.x) EXPECT_TRUE(std::isfinite(x));
    // A finite plan also makes the per-round comparison below meaningful
    // (operator== on a NaN plan would be vacuously false).
    EXPECT_EQ(plan, many[0].plans[r]) << "round " << r;
  }
  EXPECT_TRUE(any_rejected);  // dropped windows reject
  EXPECT_TRUE(any_planned);   // repaired rounds still plan
  // Rejected rounds compare equal too (both default plans).
  for (std::size_t r = 0; r < one[0].plans.size(); ++r) {
    EXPECT_EQ(one[0].plans[r].ok, many[0].plans[r].ok) << "round " << r;
  }
}

TEST(FaultReplay, ThrowingSegmentIsIsolatedAndReported) {
  // Round 7 carries an LIR table whose arity mismatches the link count:
  // under kLirTable the model build throws for exactly that segment.
  std::vector<MeasurementSnapshot> trace = synthetic_trace(10);
  trace[7].lir.resize(1, 1);
  trace[7].lir(0, 0) = 1.0;

  ReplayCell lir_cell;
  lir_cell.flows = replay_flows();
  lir_cell.interference = InterferenceModelKind::kLirTable;
  ReplayCell twohop_cell;
  twohop_cell.flows = replay_flows();

  ReplayOptions opts;
  opts.segment_rounds = 2;
  ControllerFleet serial(1);
  ControllerFleet parallel(4);
  const auto a = serial.replay({lir_cell, twohop_cell}, trace, opts);
  const auto b = parallel.replay({lir_cell, twohop_cell}, trace, opts);
  ASSERT_EQ(a.size(), 2u);

  // The LIR cell's rounds 6-7 segment failed; its other segments (and the
  // two-hop cell entirely) completed.
  EXPECT_FALSE(a[0].error.empty());
  EXPECT_FALSE(a[0].ok);
  EXPECT_FALSE(a[0].plans[6].ok);  // failed segment: default plans
  EXPECT_FALSE(a[0].plans[7].ok);
  EXPECT_TRUE(a[0].plans[0].ok);
  EXPECT_TRUE(a[0].plans[9].ok);
  EXPECT_TRUE(a[1].error.empty());
  EXPECT_TRUE(a[1].ok);

  for (std::size_t c = 0; c < a.size(); ++c) {
    EXPECT_EQ(a[c].error, b[c].error) << "cell " << c;
    EXPECT_EQ(a[c].plans, b[c].plans) << "cell " << c;
  }
}

}  // namespace
}  // namespace meshopt
