#include "transport/tcp.h"

#include <gtest/gtest.h>

#include <memory>

#include "mac/airtime.h"
#include "scenario/workbench.h"

namespace meshopt {
namespace {

TEST(Tcp, SingleHopFillsTheLink) {
  Workbench wb(51);
  wb.add_nodes(2);
  wb.channel().set_rss_symmetric_dbm(0, 1, -55.0);
  wb.net().set_path_routes({0, 1}, Rate::kR11Mbps);

  TcpFlow tcp(wb.net(), 0, 1, TcpParams{}, RngStream(51, "tcp"));
  tcp.start();
  wb.run_for(5.0);
  tcp.reset_goodput();
  wb.run_for(10.0);
  const double goodput = tcp.goodput_bps(10.0);
  const double nominal =
      nominal_throughput_bps(MacTimings{}, 1460, Rate::kR11Mbps);
  // TCP pays for reverse-direction ACK airtime; expect 50-95% of UDP max.
  EXPECT_GT(goodput, 0.5 * nominal);
  EXPECT_LT(goodput, nominal);
}

TEST(Tcp, TwoHopDeliversInOrder) {
  Workbench wb(53);
  wb.add_nodes(3);
  wb.channel().set_rss_symmetric_dbm(0, 1, -55.0);
  wb.channel().set_rss_symmetric_dbm(1, 2, -55.0);
  wb.channel().set_rss_symmetric_dbm(0, 2, -120.0);
  wb.net().set_path_routes({0, 1, 2}, Rate::kR1Mbps);

  TcpFlow tcp(wb.net(), 0, 2, TcpParams{}, RngStream(53, "tcp"));
  tcp.start();
  wb.run_for(20.0);
  // Self-interference across the two hops halves capacity, and — exactly
  // the pathology the paper targets — the hidden src/dst pair collide
  // data against reverse-path ACKs at the relay, costing well beyond the
  // 1/2 relaying factor.
  const double nominal =
      nominal_throughput_bps(MacTimings{}, 1460, Rate::kR1Mbps);
  const double goodput = tcp.goodput_bps(20.0);
  EXPECT_GT(goodput, 0.05 * nominal);
  EXPECT_LT(goodput, 0.65 * nominal);
}

TEST(Tcp, RateLimitCapsGoodput) {
  Workbench wb(57);
  wb.add_nodes(2);
  wb.channel().set_rss_symmetric_dbm(0, 1, -55.0);
  wb.net().set_path_routes({0, 1}, Rate::kR11Mbps);

  TcpFlow tcp(wb.net(), 0, 1, TcpParams{}, RngStream(57, "tcp"));
  tcp.set_rate_limit_bps(1e6);
  tcp.start();
  wb.run_for(3.0);
  tcp.reset_goodput();
  wb.run_for(10.0);
  EXPECT_NEAR(tcp.goodput_bps(10.0), 1e6, 0.12e6);
}

TEST(Tcp, RateLimitAdjustableAtRuntime) {
  Workbench wb(59);
  wb.add_nodes(2);
  wb.channel().set_rss_symmetric_dbm(0, 1, -55.0);
  wb.net().set_path_routes({0, 1}, Rate::kR11Mbps);

  TcpFlow tcp(wb.net(), 0, 1, TcpParams{}, RngStream(59, "tcp"));
  tcp.set_rate_limit_bps(0.5e6);
  tcp.start();
  wb.run_for(5.0);
  tcp.reset_goodput();
  wb.run_for(5.0);
  const double slow = tcp.goodput_bps(5.0);
  tcp.set_rate_limit_bps(2e6);
  wb.run_for(2.0);
  tcp.reset_goodput();
  wb.run_for(5.0);
  const double fast = tcp.goodput_bps(5.0);
  EXPECT_NEAR(slow, 0.5e6, 0.1e6);
  EXPECT_NEAR(fast, 2e6, 0.4e6);
}

TEST(Tcp, RecoversFromLossyChannel) {
  Workbench wb(61);
  wb.add_nodes(2);
  wb.channel().set_rss_symmetric_dbm(0, 1, -55.0);
  auto errors = std::make_shared<TableErrorModel>();
  errors->set(0, 1, Rate::kR11Mbps, 0.2);
  wb.channel().set_error_model(std::move(errors));
  wb.net().set_path_routes({0, 1}, Rate::kR11Mbps);

  TcpFlow tcp(wb.net(), 0, 1, TcpParams{}, RngStream(61, "tcp"));
  tcp.start();
  wb.run_for(15.0);
  // MAC retries mask most channel loss; TCP should still move data.
  EXPECT_GT(tcp.goodput_bps(15.0), 1e6);
}

TEST(Tcp, StarvationInGatewayTopology) {
  // The Fig. 13 setup: flow A is 2-hop (0->1->2), flow B is 1-hop (3->2),
  // A's source is hidden from B's source. Without rate control the 1-hop
  // flow should dominate.
  Workbench wb(63);
  wb.add_nodes(4);
  Channel& ch = wb.channel();
  for (NodeId a = 0; a < 4; ++a)
    for (NodeId b = 0; b < 4; ++b)
      if (a != b) ch.set_rss_dbm(a, b, -120.0);
  ch.set_rss_symmetric_dbm(0, 1, -58.0);  // far node -> relay
  ch.set_rss_symmetric_dbm(1, 2, -58.0);  // relay -> gateway
  ch.set_rss_symmetric_dbm(3, 2, -56.0);  // near node -> gateway
  ch.set_rss_symmetric_dbm(1, 3, -70.0);  // relay and near node sense
  // 0 and 3 hidden from each other; 0's packets reach 2 only via 1.
  wb.net().set_path_routes({0, 1, 2}, Rate::kR1Mbps);
  wb.net().set_path_routes({3, 2}, Rate::kR1Mbps);

  TcpFlow two_hop(wb.net(), 0, 2, TcpParams{}, RngStream(63, "t2"));
  TcpFlow one_hop(wb.net(), 3, 2, TcpParams{}, RngStream(63, "t1"));
  two_hop.start();
  one_hop.start();
  wb.run_for(10.0);
  two_hop.reset_goodput();
  one_hop.reset_goodput();
  wb.run_for(30.0);
  const double far = two_hop.goodput_bps(30.0);
  const double near = one_hop.goodput_bps(30.0);
  EXPECT_GT(near, 3.0 * std::max(far, 1.0))
      << "near=" << near << " far=" << far;
}

TEST(Tcp, CongestionStatsExposed) {
  Workbench wb(67);
  wb.add_nodes(2);
  wb.channel().set_rss_symmetric_dbm(0, 1, -55.0);
  auto errors = std::make_shared<TableErrorModel>();
  errors->set(0, 1, Rate::kR1Mbps, 0.55);  // heavy: force drops/timeouts
  wb.channel().set_error_model(std::move(errors));
  wb.net().set_path_routes({0, 1}, Rate::kR1Mbps);
  TcpFlow tcp(wb.net(), 0, 1, TcpParams{}, RngStream(67, "tcp"));
  tcp.start();
  wb.run_for(30.0);
  EXPECT_GT(tcp.timeouts() + tcp.fast_retransmits(), 0u);
  EXPECT_GT(tcp.goodput_bytes(), 0u);
}

}  // namespace
}  // namespace meshopt
