#include "mac/airtime.h"

#include <gtest/gtest.h>

namespace meshopt {
namespace {

const MacTimings kT{};

TEST(Airtime, FrameDurationAt1Mbps) {
  // 100 bytes at 1 Mb/s: 192 us PLCP + 800 us payload.
  EXPECT_EQ(frame_duration(kT, 100, Rate::kR1Mbps), micros(192 + 800));
}

TEST(Airtime, FrameDurationAt11Mbps) {
  // 1100 bytes at 11 Mb/s: 192 us PLCP + 800 us payload.
  EXPECT_EQ(frame_duration(kT, 1100, Rate::kR11Mbps), micros(192 + 800));
}

TEST(Airtime, AckDuration) {
  // 14 bytes at 1 Mb/s = 112 us + 192 us PLCP.
  EXPECT_EQ(ack_duration(kT), micros(304));
}

TEST(Airtime, EifsComposition) {
  EXPECT_EQ(kT.eifs(), kT.sifs + ack_duration(kT) + kT.difs);
}

TEST(Airtime, ContentionWindowLadder) {
  EXPECT_EQ(kT.cw_at_stage(0), 32);
  EXPECT_EQ(kT.cw_at_stage(1), 64);
  EXPECT_EQ(kT.cw_at_stage(5), 1024);
  EXPECT_EQ(kT.cw_at_stage(9), 1024);  // capped at stage m
  EXPECT_EQ(kT.cw_max(), 1024);
}

TEST(Airtime, NominalThroughput1MbpsMatchesHandComputation) {
  // P=1470B payload, +28B IP/UDP, +36B MAC+LLC = 1534B on air.
  // Tdata = 192 + 1534*8 = 12464 us. Cycle = 50 (DIFS) + 310 (mean BO)
  //        + 12464 + 10 (SIFS) + 304 (ACK) = 13138 us.
  const double expected = 1470.0 * 8.0 / 13138e-6;
  EXPECT_NEAR(nominal_throughput_bps(kT, 1470, Rate::kR1Mbps), expected,
              expected * 1e-9);
}

TEST(Airtime, NominalThroughput11MbpsBelowNominalRate) {
  const double tnom = nominal_throughput_bps(kT, 1470, Rate::kR11Mbps);
  EXPECT_LT(tnom, 11e6);
  EXPECT_GT(tnom, 5e6);  // sane efficiency for big frames
}

TEST(Airtime, NominalThroughputGrowsWithPayload) {
  const double small = nominal_throughput_bps(kT, 200, Rate::kR11Mbps);
  const double large = nominal_throughput_bps(kT, 1470, Rate::kR11Mbps);
  EXPECT_GT(large, small);
}

TEST(Airtime, BackoffBetweenStages) {
  // F(1,1) = slot * (64-1)/2 = 630 us.
  EXPECT_EQ(backoff_between_stages(kT, 1, 1), kT.slot * 63 / 2);
  // Empty interval.
  EXPECT_EQ(backoff_between_stages(kT, 1, 0), 0);
  // F(1,2) = 630 + 1270 us.
  EXPECT_EQ(backoff_between_stages(kT, 1, 2),
            kT.slot * 63 / 2 + kT.slot * 127 / 2);
}

TEST(CapacityModel, ZeroLossEqualsNominal) {
  EXPECT_DOUBLE_EQ(max_udp_throughput_bps(kT, 1470, Rate::kR1Mbps, 0.0),
                   nominal_throughput_bps(kT, 1470, Rate::kR1Mbps));
}

TEST(CapacityModel, MonotoneDecreasingInLoss) {
  double prev = max_udp_throughput_bps(kT, 1470, Rate::kR11Mbps, 0.0);
  for (double p = 0.05; p <= 0.9; p += 0.05) {
    const double cur = max_udp_throughput_bps(kT, 1470, Rate::kR11Mbps, p);
    EXPECT_LT(cur, prev) << "p=" << p;
    prev = cur;
  }
}

TEST(CapacityModel, HalfLossRoughlyHalvesThroughput) {
  // At p=0.5 ETX=2: throughput should fall to roughly half (a bit less due
  // to the extra stage-1 backoff).
  const double full = max_udp_throughput_bps(kT, 1470, Rate::kR1Mbps, 0.0);
  const double half = max_udp_throughput_bps(kT, 1470, Rate::kR1Mbps, 0.5);
  EXPECT_LT(half, 0.52 * full);
  EXPECT_GT(half, 0.40 * full);
}

TEST(CapacityModel, ClampsPathologicalLoss) {
  const double t99 = max_udp_throughput_bps(kT, 1470, Rate::kR1Mbps, 0.99);
  const double t95 = max_udp_throughput_bps(kT, 1470, Rate::kR1Mbps, 0.95);
  EXPECT_DOUBLE_EQ(t99, t95);
  EXPECT_GT(t99, 0.0);
}

TEST(CapacityModel, NegativeLossTreatedAsZero) {
  EXPECT_DOUBLE_EQ(max_udp_throughput_bps(kT, 1470, Rate::kR1Mbps, -0.1),
                   max_udp_throughput_bps(kT, 1470, Rate::kR1Mbps, 0.0));
}

class CapacityRateSweep : public ::testing::TestWithParam<Rate> {};

TEST_P(CapacityRateSweep, EightyPercentLossStillPositive) {
  EXPECT_GT(max_udp_throughput_bps(kT, 1470, GetParam(), 0.8), 0.0);
}

TEST_P(CapacityRateSweep, ThroughputBelowModulationRate) {
  EXPECT_LT(nominal_throughput_bps(kT, 1470, GetParam()),
            rate_bps(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Rates, CapacityRateSweep,
                         ::testing::Values(Rate::kR1Mbps, Rate::kR11Mbps));

}  // namespace
}  // namespace meshopt
